package fleet

import (
	"sync"
	"time"

	"repro/internal/obs/slo"
	"repro/internal/rng"
)

// MemberState is the failure detector's verdict on one replica.
type MemberState uint8

const (
	// Alive: heartbeats are landing; route traffic here.
	Alive MemberState = iota
	// Suspect: consecutive heartbeats went unanswered (or the data path's
	// failure rate crossed the NACK-fraction threshold). The member gets no
	// new traffic and is probed on a jittered exponential schedule until it
	// answers or runs out of probes.
	Suspect
	// Evicted: the member exhausted its probes. It stays evicted until a
	// join announcement or a live heartbeat resurrects it.
	Evicted
)

func (s MemberState) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Evicted:
		return "evicted"
	}
	return "unknown"
}

// DetectorConfig tunes the failure detector.
type DetectorConfig struct {
	// SuspectMisses is how many consecutive missed heartbeats turn an Alive
	// member Suspect (default 3).
	SuspectMisses int
	// ProbeBase is the first suspect-probe delay; probe k waits
	// base·2^k·jitter with jitter uniform in [0.5, 1.5), capped at ProbeMax
	// (defaults 250ms / 4s). Jitter keeps a router fleet from synchronizing
	// its probes against a recovering replica.
	ProbeBase time.Duration
	ProbeMax  time.Duration
	// ProbeLimit is how many unanswered suspect probes evict (default 5).
	ProbeLimit int
	// NackWindow and NackFrac arm data-path suspicion: when the trailing
	// NackWindow forward outcomes for a member are at least NackFrac
	// failures, the member turns Suspect without waiting for heartbeats to
	// miss. NackWindow 0 takes the default 16; a NEGATIVE NackWindow
	// disables data-path suspicion entirely (NackFrac defaults to 0.5).
	NackWindow int
	NackFrac   float64
	// SLOTarget arms burn-rate (latency) suspicion: every forwarded request
	// reported via ReportLatency counts as good when it succeeded within
	// SLOTarget, and a member whose multi-window error-budget burn rate
	// (see internal/obs/slo) exceeds SLO.MaxBurn turns Suspect — catching a
	// silently-SLOW replica that still answers heartbeats and NACKs
	// nothing, which neither heartbeat misses nor the NACK window ever
	// would. Zero disables (the default: latency suspicion is opt-in
	// because the right target is deployment-specific).
	SLOTarget time.Duration
	// SLO tunes the per-member burn-rate trackers (zero fields take the
	// slo package defaults: objective 0.99, windows 32/256, max burn 2).
	SLO slo.Config
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.SuspectMisses <= 0 {
		c.SuspectMisses = 3
	}
	if c.ProbeBase <= 0 {
		c.ProbeBase = 250 * time.Millisecond
	}
	if c.ProbeMax <= 0 {
		c.ProbeMax = 4 * time.Second
	}
	if c.ProbeLimit <= 0 {
		c.ProbeLimit = 5
	}
	if c.NackWindow < 0 {
		c.NackWindow = 0
	} else if c.NackWindow == 0 {
		c.NackWindow = 16
	}
	if c.NackFrac <= 0 || c.NackFrac > 1 {
		c.NackFrac = 0.5
	}
	return c
}

// memberHealth is the detector's per-replica state machine.
type memberHealth struct {
	state     MemberState
	misses    int       // consecutive missed heartbeats while Alive
	probes    int       // unanswered probes while Suspect
	nextProbe time.Time // earliest next suspect probe
	window    []bool    // trailing forward outcomes (true = failed)
	widx      int
	wfill     int
	wfails    int
	slo       *slo.Tracker // burn-rate tracker; nil when SLOTarget is off
}

// Detector is the fleet's failure detector: a per-member
// Alive→Suspect→Evicted state machine fed by heartbeat outcomes and
// data-path forward results. All decisions take the caller's clock, so
// tests drive it deterministically with a fake time.
type Detector struct {
	cfg DetectorConfig

	mu  sync.Mutex
	src *rng.Source
	m   map[string]*memberHealth
}

func NewDetector(cfg DetectorConfig, src *rng.Source) *Detector {
	if src == nil {
		src = rng.New(1)
	}
	return &Detector{cfg: cfg.withDefaults(), src: src, m: make(map[string]*memberHealth)}
}

func (d *Detector) member(name string) *memberHealth {
	h := d.m[name]
	if h == nil {
		h = &memberHealth{}
		if d.cfg.NackWindow > 0 {
			h.window = make([]bool, d.cfg.NackWindow)
		}
		if d.cfg.SLOTarget > 0 {
			h.slo = slo.New(d.cfg.SLO)
		}
		d.m[name] = h
	}
	return h
}

// Observe records one heartbeat outcome at time now and returns the
// member's state after the transition. A success from any state — including
// Evicted — restores Alive: the member is answering, so it is back.
func (d *Detector) Observe(name string, ok bool, now time.Time) MemberState {
	d.mu.Lock()
	defer d.mu.Unlock()
	h := d.member(name)
	if ok {
		h.state = Alive
		h.misses, h.probes = 0, 0
		h.resetWindow()
		return Alive
	}
	switch h.state {
	case Alive:
		h.misses++
		if h.misses >= d.cfg.SuspectMisses {
			d.suspect(h, now)
		}
	case Suspect:
		h.probes++
		if h.probes >= d.cfg.ProbeLimit {
			h.state = Evicted
		} else {
			h.scheduleProbe(d.cfg, d.src, now)
		}
	}
	return h.state
}

// suspect transitions a member into Suspect and schedules its first probe.
func (d *Detector) suspect(h *memberHealth, now time.Time) {
	h.state = Suspect
	h.probes = 0
	h.scheduleProbe(d.cfg, d.src, now)
}

func (h *memberHealth) scheduleProbe(cfg DetectorConfig, src *rng.Source, now time.Time) {
	delay := time.Duration(float64(cfg.ProbeBase) * float64(int(1)<<h.probes) * (0.5 + src.Float64()))
	if delay > cfg.ProbeMax {
		delay = cfg.ProbeMax
	}
	h.nextProbe = now.Add(delay)
}

func (h *memberHealth) resetWindow() {
	for i := range h.window {
		h.window[i] = false
	}
	h.widx, h.wfill, h.wfails = 0, 0, 0
}

// ReportForward records one data-path forward outcome (failed = timeout or
// degraded NACK). A full window at or above the NACK fraction turns an
// Alive member Suspect without waiting for heartbeats to miss — the data
// path sees trouble seconds before the next liveness tick does. Returns the
// state after the report.
func (d *Detector) ReportForward(name string, failed bool, now time.Time) MemberState {
	d.mu.Lock()
	defer d.mu.Unlock()
	h := d.member(name)
	if len(h.window) == 0 {
		return h.state
	}
	if h.wfill == len(h.window) && h.window[h.widx] {
		h.wfails--
	}
	h.window[h.widx] = failed
	if failed {
		h.wfails++
	}
	h.widx = (h.widx + 1) % len(h.window)
	if h.wfill < len(h.window) {
		h.wfill++
	}
	if h.state == Alive && h.wfill == len(h.window) &&
		float64(h.wfails) >= d.cfg.NackFrac*float64(len(h.window)) {
		d.suspect(h, now)
		h.resetWindow()
	}
	return h.state
}

// ReportLatency records one forwarded request's latency outcome for
// burn-rate suspicion: the observation is good when the request succeeded
// (ok) within the configured SLOTarget. An Alive member whose fast AND
// slow burn windows both exceed the threshold turns Suspect — the
// silently-slow failure mode heartbeats cannot see, because a replica
// drowning in queue depth still answers a 12-byte heartbeat instantly.
// The tracker resets on suspicion (like the NACK window) so the next
// Alive stint starts with a clean budget. No-op when SLOTarget is unset.
// Returns the state after the report.
func (d *Detector) ReportLatency(name string, dur time.Duration, ok bool, now time.Time) MemberState {
	d.mu.Lock()
	defer d.mu.Unlock()
	h := d.member(name)
	if h.slo == nil {
		return h.state
	}
	h.slo.Observe(ok && dur <= d.cfg.SLOTarget)
	if h.state == Alive && !h.slo.Healthy() {
		d.suspect(h, now)
		h.slo.Reset()
	}
	return h.state
}

// HealthScore returns the member's burn-rate health score in (0, 1] — 1
// with no budget burning (or with SLO tracking off), shrinking toward 0 as
// the worst-window burn grows. The router exports it per replica.
func (d *Detector) HealthScore(name string) float64 {
	d.mu.Lock()
	h := d.m[name]
	d.mu.Unlock()
	if h == nil || h.slo == nil {
		return 1
	}
	return h.slo.HealthScore()
}

// ShouldProbe reports whether a Suspect member's next jittered probe is
// due. Alive members are always probed (the regular heartbeat cadence);
// Evicted members never are.
func (d *Detector) ShouldProbe(name string, now time.Time) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	h := d.member(name)
	switch h.state {
	case Alive:
		return true
	case Suspect:
		return !now.Before(h.nextProbe)
	}
	return false
}

// State returns the member's current verdict (Alive for an unknown name —
// a member starts trusted until evidence says otherwise).
func (d *Detector) State(name string) MemberState {
	d.mu.Lock()
	defer d.mu.Unlock()
	if h, ok := d.m[name]; ok {
		return h.state
	}
	return Alive
}

// Evict forces a member into the Evicted state (the publication path calls
// this when a replica dies mid-transfer, without waiting for heartbeats to
// reach the same verdict).
func (d *Detector) Evict(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.member(name).state = Evicted
}

// Revive restores a member to Alive (a join announcement: the replica is
// provably talking).
func (d *Detector) Revive(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	h := d.member(name)
	h.state = Alive
	h.misses, h.probes = 0, 0
	h.resetWindow()
	h.slo.Reset()
}

// Counts returns how many known members sit in each state.
func (d *Detector) Counts() (alive, suspect, evicted int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, h := range d.m {
		switch h.state {
		case Alive:
			alive++
		case Suspect:
			suspect++
		case Evicted:
			evicted++
		}
	}
	return
}
