package fleet

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/netchaos"
	"repro/internal/obs/slo"
)

// TestReplayObsDeterministic pins the replay's observability plane: two
// runs with the same config must agree on the merged-snapshot fingerprint,
// the per-replica snapshots, the burn rates, and the health scores — the
// property the obsgate extension asserts through the serve bench.
func TestReplayObsDeterministic(t *testing.T) {
	cfg := ReplayConfig{Seed: 42, Chaos: &netchaos.Config{
		Inbound:  netchaos.Mix(0.1),
		Outbound: netchaos.Mix(0.1),
		Seed:     42,
	}}
	st1, ob1, err := ReplayWithObs(cfg)
	if err != nil {
		t.Fatalf("first replay: %v", err)
	}
	st2, ob2, err := ReplayWithObs(cfg)
	if err != nil {
		t.Fatalf("second replay: %v", err)
	}
	if st1 != st2 {
		t.Fatalf("tallies diverged: %+v vs %+v", st1, st2)
	}
	f1, f2 := ob1.Merged.Fingerprint(), ob2.Merged.Fingerprint()
	if !reflect.DeepEqual(f1, f2) {
		t.Fatalf("merged fingerprints diverged:\n a=%v\n b=%v", f1, f2)
	}
	if ob1.BurnFast != ob2.BurnFast || ob1.BurnSlow != ob2.BurnSlow {
		t.Fatalf("burn rates diverged: (%v,%v) vs (%v,%v)",
			ob1.BurnFast, ob1.BurnSlow, ob2.BurnFast, ob2.BurnSlow)
	}
	if !reflect.DeepEqual(ob1.Health, ob2.Health) {
		t.Fatalf("health scores diverged: %v vs %v", ob1.Health, ob2.Health)
	}
	if !reflect.DeepEqual(ob1.PerReplica, ob2.PerReplica) {
		t.Fatal("per-replica snapshots diverged")
	}
}

// TestReplayObsConsistentWithTallies checks the obs plane against the
// episode's own ledger: every forwarded request appears exactly once as a
// replica-side serve.served count and a serve.request.seconds observation,
// across all replicas, and the merge preserves the totals.
func TestReplayObsConsistentWithTallies(t *testing.T) {
	st, ob, err := ReplayWithObs(ReplayConfig{Seed: 7})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(ob.PerReplica) != 3 {
		t.Fatalf("want 3 per-replica snapshots, got %d", len(ob.PerReplica))
	}
	var served, histCount int64
	for name, snap := range ob.PerReplica {
		served += snap.Counters["serve.served"]
		h, ok := snap.Histograms["serve.request.seconds"]
		if !ok {
			t.Fatalf("%s snapshot missing serve.request.seconds", name)
		}
		histCount += h.Count
	}
	if served != int64(st.Forwards) {
		t.Fatalf("per-replica serve.served sums to %d, episode forwarded %d", served, st.Forwards)
	}
	if histCount != int64(st.Forwards) {
		t.Fatalf("per-replica latency observations sum to %d, episode forwarded %d", histCount, st.Forwards)
	}
	if got := ob.Merged.Counters["serve.served"]; got != int64(st.Forwards) {
		t.Fatalf("merged serve.served = %d, want %d", got, st.Forwards)
	}
	if got := ob.Merged.Histograms["serve.request.seconds"].Count; got != int64(st.Forwards) {
		t.Fatalf("merged latency count = %d, want %d", got, st.Forwards)
	}
	// Every draw in the clean episode lands within the SLO target, so the
	// fleet budget never burns and every replica scores perfect health.
	if ob.BurnFast != 0 || ob.BurnSlow != 0 {
		t.Fatalf("clean episode burned budget: fast=%v slow=%v", ob.BurnFast, ob.BurnSlow)
	}
	for name, h := range ob.Health {
		if h != 1 {
			t.Fatalf("clean episode: %s health = %v, want 1", name, h)
		}
	}
}

// TestDetectorSlowReplicaSuspectedBySLO drives the silently-slow failure
// mode: a replica that answers every heartbeat instantly (so misses never
// accumulate) and NACKs nothing (so the NACK window never fills) but
// serves every request far over the SLO target. Burn-rate suspicion must
// turn it Suspect; neither legacy mechanism ever would.
func TestDetectorSlowReplicaSuspectedBySLO(t *testing.T) {
	det := NewDetector(DetectorConfig{
		SuspectMisses: 2,
		NackWindow:    8,
		SLOTarget:     time.Millisecond,
		SLO:           slo.Config{FastWindow: 32, SlowWindow: 64},
	}, nil)
	now := time.Unix(1_726_000_000, 0)
	det.Revive("slow")

	suspected := false
	for i := 0; i < 256; i++ {
		// Heartbeats keep landing: the replica is alive, just drowning.
		det.Observe("slow", true, now)
		// Every request SUCCEEDS (no NACK-window evidence) but takes 5ms
		// against a 1ms target.
		if det.ReportLatency("slow", 5*time.Millisecond, true, now) == Suspect {
			suspected = true
			break
		}
		now = now.Add(time.Millisecond)
	}
	if !suspected {
		t.Fatal("silently-slow replica never suspected by burn rate")
	}
	if score := det.HealthScore("slow"); score != 1 {
		t.Fatalf("tracker should reset on suspicion, health = %v", score)
	}

	// Control: the same traffic within the target never trips suspicion.
	det2 := NewDetector(DetectorConfig{
		SLOTarget: time.Millisecond,
		SLO:       slo.Config{FastWindow: 32, SlowWindow: 64},
	}, nil)
	det2.Revive("fast")
	for i := 0; i < 256; i++ {
		if det2.ReportLatency("fast", 100*time.Microsecond, true, now) != Alive {
			t.Fatal("within-SLO replica suspected")
		}
	}
	if score := det2.HealthScore("fast"); score != 1 {
		t.Fatalf("within-SLO replica health = %v, want 1", score)
	}
}

// TestDetectorSLODisabledByDefault: with no SLOTarget, ReportLatency is a
// no-op and HealthScore reports 1 — the pre-obs-plane behavior.
func TestDetectorSLODisabledByDefault(t *testing.T) {
	det := NewDetector(DetectorConfig{}, nil)
	now := time.Unix(1_726_000_000, 0)
	for i := 0; i < 512; i++ {
		if st := det.ReportLatency("r", time.Second, false, now); st != Alive {
			t.Fatalf("SLO-disabled detector changed state to %v", st)
		}
	}
	if score := det.HealthScore("r"); score != 1 {
		t.Fatalf("SLO-disabled health = %v, want 1", score)
	}
}
