// Package fleet is the router/coordinator tier in front of N metaai-serve
// replicas: one address clients talk to, consistent-hash routing with
// failover and bounded hedging across the replica set, heartbeat-driven
// failure detection (Alive → Suspect → Evicted, with jittered exponential
// probing before eviction), and chunked epoch replication with a fleet-wide
// canary gate and automatic rollback. The fleet speaks the same airproto
// datagrams the data path does — a replica needs exactly one socket for
// serving, liveness, and replication.
package fleet

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/airproto"
	"repro/internal/checkpoint"
	"repro/internal/netchaos"
	"repro/internal/obs"
	"repro/internal/obs/events"
	"repro/internal/obs/slo"
	"repro/internal/obs/trace"
	"repro/internal/rng"
)

// Replica names one seed member of the fleet.
type Replica struct {
	Name string // display name; defaults to Addr
	Addr string // UDP host:port of the replica's serving socket
}

// Config assembles a Router.
type Config struct {
	// Replicas is the seed membership; replicas can also announce
	// themselves later with KindJoin frames.
	Replicas []Replica
	// HeartbeatEvery is the liveness probe cadence (default 250ms);
	// HeartbeatTimeout is how long one probe waits (default 200ms).
	HeartbeatEvery   time.Duration
	HeartbeatTimeout time.Duration
	// Detector tunes the failure detector's suspicion thresholds.
	Detector DetectorConfig
	// ForwardTimeout bounds one client request end to end through all
	// failover attempts (default 3s). HedgeAfter launches the next
	// candidate when the current one has not answered (default 150ms), and
	// MaxAttempts caps the distinct replicas tried (default 3).
	ForwardTimeout time.Duration
	HedgeAfter     time.Duration
	MaxAttempts    int
	// InflightPerReplica scales the router's load-shedding cap: at most
	// InflightPerReplica × live-replica-count forwards run at once, so a
	// shrinking fleet sheds load instead of queueing it (default 64).
	InflightPerReplica int
	// ChunkBytes sizes replication chunks (default DefaultChunkBytes);
	// PublishTimeout is the per-chunk ack wait and PublishRetries the
	// per-chunk send attempts (defaults 500ms / 3).
	ChunkBytes     int
	PublishTimeout time.Duration
	PublishRetries int
	// CanaryFrac is the minimum prediction agreement the canary replica
	// must report before an epoch fans out fleet-wide (default 0.8).
	CanaryFrac float64
	// Seed drives the detector's probe jitter.
	Seed uint64
	// StateDir, when set, journals the coordinator's core state (publication
	// sequence, membership, the committed epoch bytes) as a sealed
	// checkpoint after every commit, rollback, and membership change. A
	// restarted router restores it and rejoins its own fleet without
	// divergence: sequences keep counting instead of restarting from 1, and
	// one anti-entropy round (forced by the fresh incarnation nonce)
	// re-converges the replicas onto the journaled epoch.
	StateDir string
	// Tracer is the tracer the router's fleet.request / fleet.publish spans
	// start on and the ring KindTrace fetches read from; nil means the
	// process-wide trace.Default(). Injectable so several in-process routers
	// and replicas (a test fleet) can each own a separate retention ring,
	// the way separate processes naturally would.
	Tracer *trace.Tracer
	// Logf receives progress lines; nil silences them.
	Logf func(format string, args ...interface{})
}

func (c Config) withDefaults() Config {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 250 * time.Millisecond
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = 200 * time.Millisecond
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 3 * time.Second
	}
	if c.HedgeAfter <= 0 {
		c.HedgeAfter = 150 * time.Millisecond
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.InflightPerReplica <= 0 {
		c.InflightPerReplica = 64
	}
	if c.ChunkBytes <= 0 || c.ChunkBytes > airproto.MaxChunkBytes {
		c.ChunkBytes = DefaultChunkBytes
	}
	if c.PublishTimeout <= 0 {
		c.PublishTimeout = 500 * time.Millisecond
	}
	if c.PublishRetries <= 0 {
		c.PublishRetries = 3
	}
	if c.CanaryFrac <= 0 || c.CanaryFrac > 1 {
		c.CanaryFrac = 0.8
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
	if c.Tracer == nil {
		c.Tracer = trace.Default()
	}
	return c
}

// member is the router's record of one replica.
type member struct {
	name string
	addr *net.UDPAddr
	// fleetVer is the (incarnation nonce << 32 | seq) of the last replicated
	// epoch the replica reported via heartbeat or join.
	fleetVer   atomic.Uint64
	catchingUp atomic.Bool // an anti-entropy push is already in flight
	// snap is the replica's latest obs.Snapshot, decoded from the blob its
	// heartbeat replies piggyback (nil until the first one lands).
	snap atomic.Pointer[obs.Snapshot]
}

// Router fronts the fleet: it routes client frames across the replicas by
// consistent hash with failover and hedging, heartbeats every member, and
// replicates epochs with a canary gate (see Publish).
type Router struct {
	cfg Config
	det *Detector
	up  *net.UDPConn // upstream socket: heartbeats + forwarded requests
	// incar is this coordinator incarnation's random 24-bit nonce, stamped
	// on every push chunk and compared against the nonce replicas report
	// back. It must differ across process restarts (so it is NOT derived
	// from Config.Seed): transfer sequences restart from 1 with the process,
	// and replicas cache per-transfer verdicts keyed by (seq, nonce).
	incar uint32

	mu         sync.Mutex
	ring       *Ring
	members    map[string]*member
	current    []byte // sealed epoch the fleet converges on (nil before the first publish)
	currentTid uint32

	pubMu  sync.Mutex // one publication (or fleet rollback) at a time
	pubSeq atomic.Uint32

	nextID atomic.Uint32
	pendMu sync.Mutex
	pend   map[uint32]chan *airproto.Frame

	// fwdSeq numbers every forwarded request; with the client frame ID it
	// derives the deterministic fleet.request trace ID. It bumps whether or
	// not tracing is armed, so arming the tracer never shifts the sequence.
	fwdSeq atomic.Uint64
	// fleetSLO tracks the fleet-wide error-budget burn over end-to-end
	// forward outcomes (nil while Detector.SLOTarget is unset).
	fleetSLO *slo.Tracker

	inflight  atomic.Int64
	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// newIncarnation draws a nonzero random 24-bit coordinator nonce. Entropy
// comes from the OS, falling back to the wall clock — never from a config
// seed, which a restarted process would reuse.
func newIncarnation() uint32 {
	var b [4]byte
	if _, err := crand.Read(b[:]); err == nil {
		if n := binary.LittleEndian.Uint32(b[:]) & airproto.NonceMask; n != 0 {
			return n
		}
	}
	return uint32(time.Now().UnixNano())&airproto.NonceMask | 1
}

// NewRouter resolves the seed replicas, restores any journaled coordinator
// state, binds the upstream socket, and starts the heartbeat and
// reply-dispatch loops. Restored state wins over seed replicas for
// membership; the incarnation nonce is ALWAYS drawn fresh (never restored),
// so replicas still holding the previous incarnation's version mismatch
// and anti-entropy re-converges them onto the journaled epoch.
func NewRouter(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	r := &Router{
		cfg:     cfg,
		det:     NewDetector(cfg.Detector, rng.New(cfg.Seed^0xf1ee7)),
		incar:   newIncarnation(),
		ring:    NewRing(),
		members: make(map[string]*member),
		pend:    make(map[uint32]chan *airproto.Frame),
		stop:    make(chan struct{}),
	}
	if cfg.Detector.SLOTarget > 0 {
		r.fleetSLO = slo.New(cfg.Detector.SLO)
	}
	for _, rep := range cfg.Replicas {
		addr, err := net.ResolveUDPAddr("udp", rep.Addr)
		if err != nil {
			return nil, fmt.Errorf("fleet: replica %q: %w", rep.Addr, err)
		}
		name := rep.Name
		if name == "" {
			name = addr.String()
		}
		r.members[name] = &member{name: name, addr: addr}
		r.ring.Add(name)
	}
	if err := r.restoreState(); err != nil {
		return nil, err
	}
	up, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return nil, err
	}
	r.up = up
	r.wg.Add(2)
	go r.upstreamLoop()
	go r.heartbeatLoop()
	return r, nil
}

// statePath is the coordinator's journal file under StateDir.
func (r *Router) statePath() string {
	return filepath.Join(r.cfg.StateDir, "fleet-state.ckpt")
}

// restoreState loads the journaled coordinator state, if any. A missing
// file is a cold start; a corrupt file is an error (silently discarding it
// would restart sequences from 1 — the exact divergence the journal
// exists to prevent).
func (r *Router) restoreState() error {
	if r.cfg.StateDir == "" {
		return nil
	}
	if err := os.MkdirAll(r.cfg.StateDir, 0o755); err != nil {
		return fmt.Errorf("fleet: state dir: %w", err)
	}
	b, err := os.ReadFile(r.statePath())
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("fleet: read state: %w", err)
	}
	st, err := checkpoint.DecodeFleetState(b)
	if err != nil {
		return fmt.Errorf("fleet: restore state: %w", err)
	}
	r.pubSeq.Store(st.PubSeq)
	r.currentTid = st.CurrentTid
	r.current = st.Current
	for _, m := range st.Members {
		if _, ok := r.members[m.Name]; ok {
			continue // a seed replica re-declared on the command line wins
		}
		addr, err := net.ResolveUDPAddr("udp", m.Addr)
		if err != nil {
			r.cfg.Logf("fleet: journaled member %s has unresolvable addr %q, dropping", m.Name, m.Addr)
			continue
		}
		r.members[m.Name] = &member{name: m.Name, addr: addr}
		r.ring.Add(m.Name)
	}
	r.cfg.Logf("fleet: restored coordinator state: pubSeq %d, committed seq %d, %d members, epoch bytes %d (fresh incarnation %#x)",
		st.PubSeq, st.CurrentTid, len(r.members), len(st.Current), r.incar)
	return nil
}

// persistState journals the coordinator's core state atomically (write to a
// temp file, then rename). Failures are logged, not fatal: the fleet keeps
// running on its in-memory state and the next mutation retries the write.
func (r *Router) persistState() {
	if r.cfg.StateDir == "" {
		return
	}
	r.mu.Lock()
	st := &checkpoint.FleetState{
		PubSeq:     r.pubSeq.Load(),
		CurrentTid: r.currentTid,
		Current:    r.current,
		Members:    make([]checkpoint.FleetMember, 0, len(r.members)),
	}
	for _, m := range r.members {
		st.Members = append(st.Members, checkpoint.FleetMember{Name: m.name, Addr: m.addr.String()})
	}
	r.mu.Unlock()
	b := checkpoint.EncodeFleetState(st)
	tmp := r.statePath() + ".tmp"
	if err := os.WriteFile(tmp, b, 0o644); err != nil {
		r.cfg.Logf("fleet: persist state: %v", err)
		return
	}
	if err := os.Rename(tmp, r.statePath()); err != nil {
		r.cfg.Logf("fleet: persist state: %v", err)
	}
}

// Close stops the heartbeat loop and the upstream socket. The client-facing
// connection passed to Serve belongs to the caller.
func (r *Router) Close() {
	r.closeOnce.Do(func() {
		close(r.stop)
		r.up.Close()
	})
	r.wg.Wait()
}

// Members returns the current membership names in stable order.
func (r *Router) Members() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.members))
	for name := range r.members {
		out = append(out, name)
	}
	return out
}

// CurrentTid returns the fleet sequence of the last committed publication
// (0 before the first).
func (r *Router) CurrentTid() uint32 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.currentTid
}

// Incarnation returns this coordinator incarnation's nonce — the high half
// of every fleet version it publishes.
func (r *Router) Incarnation() uint32 { return r.incar }

// ver packs a transfer sequence into this incarnation's fleet version.
func (r *Router) ver(tid uint32) uint64 {
	return uint64(r.incar)<<32 | uint64(tid)
}

// MemberFleetSeq returns the last replicated-epoch sequence a member
// reported via heartbeat or join (ok=false for an unknown member).
func (r *Router) MemberFleetSeq(name string) (uint64, bool) {
	r.mu.Lock()
	m := r.members[name]
	r.mu.Unlock()
	if m == nil {
		return 0, false
	}
	return m.fleetVer.Load() & 0xffffffff, true
}

// await registers a pending reply slot for frame id.
func (r *Router) await(id uint32) chan *airproto.Frame {
	ch := make(chan *airproto.Frame, 4)
	r.pendMu.Lock()
	r.pend[id] = ch
	r.pendMu.Unlock()
	return ch
}

func (r *Router) settle(id uint32) {
	r.pendMu.Lock()
	delete(r.pend, id)
	r.pendMu.Unlock()
}

// newID returns a fresh nonzero upstream frame ID. Zero is reserved: a
// replica's unattributable bad-frame NACK carries ID 0 and must never match
// a pending exchange.
func (r *Router) newID() uint32 {
	for {
		if id := r.nextID.Add(1); id != 0 {
			return id
		}
	}
}

// upstreamLoop dispatches every replica reply to its pending exchange by
// frame ID — the reverse half of the router's NAT: replies come back on the
// shared upstream socket and are matched to whichever forward or heartbeat
// sent them.
func (r *Router) upstreamLoop() {
	defer r.wg.Done()
	buf := make([]byte, 65535)
	for {
		n, _, err := r.up.ReadFromUDP(buf)
		if err != nil {
			return
		}
		f, err := airproto.Unmarshal(buf[:n])
		if err != nil || f.ID == 0 {
			continue
		}
		r.pendMu.Lock()
		ch := r.pend[f.ID]
		r.pendMu.Unlock()
		if ch != nil {
			select {
			case ch <- f:
			default:
			}
		}
	}
}

// heartbeatLoop pings every member on the configured cadence. Alive members
// are probed every tick; Suspect members only when their jittered
// exponential backoff says so (hammering a struggling replica helps
// nobody); Evicted members not at all — only a join resurrects them.
func (r *Router) heartbeatLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.HeartbeatEvery)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			now := time.Now()
			for _, m := range r.snapshotMembers() {
				if !r.det.ShouldProbe(m.name, now) {
					continue
				}
				r.wg.Add(1)
				go func(m *member) {
					defer r.wg.Done()
					r.heartbeat(m)
				}(m)
			}
			alive, suspect, _ := r.det.Counts()
			liveGauge.Set(float64(alive))
			suspectGauge.Set(float64(suspect))
		}
	}
}

func (r *Router) snapshotMembers() []*member {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]*member, 0, len(r.members))
	for _, m := range r.members {
		out = append(out, m)
	}
	return out
}

// heartbeat runs one liveness exchange with a member and feeds the outcome
// to the detector. A live reply also carries the member's replicated-epoch
// sequence, which drives anti-entropy: a stale member gets a catch-up push.
func (r *Router) heartbeat(m *member) {
	id := r.newID()
	ch := r.await(id)
	defer r.settle(id)
	out, err := airproto.Heartbeat(id).Marshal()
	if err != nil {
		return
	}
	if _, err := r.up.WriteToUDP(out, m.addr); err != nil {
		r.observeMember(m, false)
		return
	}
	timer := time.NewTimer(r.cfg.HeartbeatTimeout)
	defer timer.Stop()
	select {
	case f := <-ch:
		if f.Kind == airproto.KindHeartbeat && len(f.Data) > 0 {
			hv := f.HealthVector()
			m.fleetVer.Store(uint64(hv[airproto.HBFleetNonce])<<32 | uint64(hv[airproto.HBFleetSeq]))
			// The reply may piggyback the replica's obs snapshot after the
			// health vector (Label = blob byte length). A blob mangled in
			// flight fails its CRC and is simply skipped — the member's last
			// good snapshot stands until a clean one lands.
			if f.Label > 0 && len(f.Data) > airproto.HBVectorLen {
				blob := airproto.UnpackBytes(f.Data[airproto.HBVectorLen:], int(f.Label))
				if snap, err := obs.DecodeSnapshot(blob); err == nil {
					m.snap.Store(&snap)
				}
			}
		}
		r.observeMember(m, true)
		r.maybeCatchUp(m)
	case <-timer.C:
		r.observeMember(m, false)
	case <-r.stop:
	}
}

// observeMember feeds one heartbeat outcome to the detector and reacts to
// the eviction edge: the member leaves the ring (its keys redistribute) and
// the event journal records the death.
func (r *Router) observeMember(m *member, ok bool) {
	prev := r.det.State(m.name)
	st := r.det.Observe(m.name, ok, time.Now())
	if st == prev {
		return
	}
	if st == Evicted {
		r.evict(m, "missed heartbeats and all probes")
	} else if prev == Evicted || (prev == Suspect && st == Alive) {
		r.mu.Lock()
		r.ring.Add(m.name)
		r.mu.Unlock()
		r.cfg.Logf("fleet: replica %s recovered (%s -> %s)", m.name, prev, st)
	}
}

// evict removes a member from the routing ring (the record stays, so a
// rejoin is cheap). Idempotent.
func (r *Router) evict(m *member, why string) {
	r.mu.Lock()
	had := r.ring.Has(m.name)
	r.ring.Remove(m.name)
	r.mu.Unlock()
	r.det.Evict(m.name)
	if !had {
		return
	}
	evictedCount.Inc()
	r.cfg.Logf("fleet: evicted replica %s: %s", m.name, why)
	events.Default().Emit(events.FleetMember, "replica evicted",
		events.Str("member", m.name),
		events.Str("why", why))
}

// maybeCatchUp launches an asynchronous anti-entropy push when the member
// reports ANY fleet version other than the coordinator's current one — not
// just an older sequence. A replica can legitimately report a HIGHER
// number than the fleet's: sequences restart from 1 with the coordinator
// process, so after a restart a surviving replica holds a large sequence
// from the previous incarnation while the new coordinator counts from 1
// again. The coordinator is authoritative; inequality means divergence.
// One catch-up per member at a time; the member's next heartbeat reply
// shows whether it landed.
func (r *Router) maybeCatchUp(m *member) {
	r.mu.Lock()
	cur, tid := r.current, r.currentTid
	r.mu.Unlock()
	if cur == nil || m.fleetVer.Load() == r.ver(tid) {
		return
	}
	if !m.catchingUp.CompareAndSwap(false, true) {
		return
	}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer m.catchingUp.Store(false)
		// Serialize with publishes and re-check: mid-fan-out the member may
		// already hold a version NEWER than currentTid (per-member versions
		// advance before the commit point), and pushing the old current
		// epoch over it would regress the replica.
		r.pubMu.Lock()
		defer r.pubMu.Unlock()
		r.mu.Lock()
		cur, tid := r.current, r.currentTid
		r.mu.Unlock()
		if cur == nil || m.fleetVer.Load() == r.ver(tid) {
			return
		}
		catchupCount.Inc()
		ack, err := r.pushEpoch(m, tid, cur, airproto.PushCommit)
		switch {
		case err != nil:
			r.cfg.Logf("fleet: catch-up push to %s failed: %v", m.name, err)
		case ack.Code != airproto.AckApplied:
			r.cfg.Logf("fleet: replica %s refused catch-up epoch %d", m.name, tid)
		default:
			m.fleetVer.Store(r.ver(tid))
			r.cfg.Logf("fleet: replica %s caught up to epoch %d", m.name, tid)
		}
	}()
}

// handleJoin processes a replica's membership announcement: first contact
// registers the member and its serving address (the datagram's source),
// a rejoin revives an evicted or suspect member, and either way the reply
// carries the fleet's current epoch sequence so a stale replica knows a
// catch-up push is coming.
func (r *Router) handleJoin(conn netchaos.PacketConn, f *airproto.Frame, from *net.UDPAddr) {
	name := from.String()
	fleetSeq, _, fleetNonce := f.JoinInfo()
	r.mu.Lock()
	m := r.members[name]
	fresh := m == nil
	if fresh {
		m = &member{name: name, addr: from}
		r.members[name] = m
	}
	inRing := r.ring.Has(name)
	if !inRing {
		r.ring.Add(name)
	}
	curTid := r.currentTid
	r.mu.Unlock()

	m.fleetVer.Store(uint64(fleetNonce)<<32 | fleetSeq)
	prev := r.det.State(name)
	r.det.Revive(name)
	if fresh || !inRing || prev != Alive {
		joinCount.Inc()
		r.cfg.Logf("fleet: replica %s joined (reported epoch %d, fleet at %d)", name, fleetSeq, curTid)
		events.Default().Emit(events.FleetMember, "replica joined",
			events.Str("member", name),
			events.Num("reported_seq", float64(fleetSeq)),
			events.Num("fleet_seq", float64(curTid)))
	}
	if fresh {
		r.persistState()
	}
	if out, err := airproto.Join(f.ID, uint64(curTid), 0, r.incar).Marshal(); err == nil {
		conn.WriteToUDP(out, from)
	}
	r.maybeCatchUp(m)
}

// liveRoute returns up to n Alive members in ring order from key.
func (r *Router) liveRoute(key uint64, n int) []*member {
	r.mu.Lock()
	names := r.ring.Route(key, r.ring.Len())
	ms := make([]*member, 0, len(names))
	for _, name := range names {
		ms = append(ms, r.members[name])
	}
	r.mu.Unlock()
	out := make([]*member, 0, n)
	for _, m := range ms {
		if m != nil && r.det.State(m.name) == Alive {
			out = append(out, m)
			if len(out) == n {
				break
			}
		}
	}
	return out
}

// Live returns the number of members the detector currently routes to.
func (r *Router) Live() int { return r.liveCount() }

func (r *Router) liveCount() int {
	r.mu.Lock()
	names := r.ring.Members()
	r.mu.Unlock()
	n := 0
	for _, name := range names {
		if r.det.State(name) == Alive {
			n++
		}
	}
	return n
}

// Serve answers client frames on conn until it is closed (the caller owns
// shutdown, exactly like airServer.serve). Data requests are forwarded to
// replicas; stats and trace requests are answered by the router itself
// (fleet-merged counters, stitched cross-replica traces) on the control
// plane, outside admission; joins update membership; everything else is
// dropped. conn is any netchaos.PacketConn — a bare *net.UDPConn in
// production, or a chaos-wrapped one when the front link itself is under
// fault injection.
func (r *Router) Serve(conn netchaos.PacketConn) error {
	for {
		buf := make([]byte, 65535)
		n, from, err := conn.ReadFromUDP(buf)
		if err != nil {
			return err
		}
		f, err := airproto.Unmarshal(buf[:n])
		if err != nil {
			r.writeTo(conn, from, airproto.Nack(0, airproto.StatusBadFrame, 0))
			continue
		}
		switch f.Kind {
		case airproto.KindJoin:
			r.handleJoin(conn, f, from)
		case airproto.KindStats, airproto.KindTrace:
			// Control-plane traffic: the router answers these itself —
			// never shed, never counted against the inflight cap. An
			// operator reading a drowning fleet's vitals must not compete
			// with the data plane for admission.
			r.wg.Add(1)
			go func(f *airproto.Frame, from *net.UDPAddr) {
				defer r.wg.Done()
				if f.Kind == airproto.KindStats {
					r.answerStats(conn, f, from)
				} else {
					r.answerTrace(conn, f, from)
				}
			}(f, from)
		case airproto.KindData:
			live := r.liveCount()
			if live == 0 || r.inflight.Load() >= int64(r.cfg.InflightPerReplica*live) {
				// Router-level load shedding: fleet health sets the cap, so
				// a shrinking fleet sheds early instead of queueing forwards
				// that will only time out.
				shedCount.Inc()
				r.writeTo(conn, from, airproto.Nack(f.ID, airproto.StatusDegraded, 0))
				continue
			}
			r.inflight.Add(1)
			r.wg.Add(1)
			go func(f *airproto.Frame, from *net.UDPAddr) {
				defer r.wg.Done()
				defer r.inflight.Add(-1)
				r.forward(conn, f, from)
			}(f, from)
		}
	}
}

func (r *Router) writeTo(conn netchaos.PacketConn, to *net.UDPAddr, f *airproto.Frame) {
	if out, err := f.Marshal(); err == nil {
		if _, err := conn.WriteToUDP(out, to); err != nil {
			r.cfg.Logf("fleet: reply to %s: %v", to, err)
		}
	}
}

// fwdResult is one forwarding attempt's outcome: the reply frame (nil on
// timeout), the member that produced it, and the attempt's ordinal.
type fwdResult struct {
	f       *airproto.Frame
	m       *member
	attempt int
}

// forward routes one client request: the consistent-hash preference list
// for the client's address gives the primary and the failover order. A
// degraded or retry-after NACK or an attempt timeout fails over to the
// next candidate; a candidate that is merely slow gets hedged — the next
// candidate launches in parallel after HedgeAfter, and whichever replies
// first wins. The reply is rewritten back to the client's original frame
// ID, so the translation is invisible: clients speak to the fleet as if it
// were one server.
//
// A data frame carrying a deadline budget has it pinned to an absolute
// expiry on arrival and DECREMENTED across hops: every attempt re-stamps
// the remaining budget, so a replica sees how much time the client
// actually has left, not the original figure minus nothing. Once the
// budget is gone the router stops launching attempts and answers
// StatusExpired itself — hedging past a dead deadline only burns replica
// capacity on work nobody will read.
func (r *Router) forward(conn netchaos.PacketConn, f *airproto.Frame, from *net.UDPAddr) {
	t := obs.StartTimer()
	start := time.Now()
	prefs := r.liveRoute(hashString(from.String()), r.cfg.MaxAttempts)
	if len(prefs) == 0 {
		shedCount.Inc()
		r.writeTo(conn, from, airproto.Nack(f.ID, airproto.StatusDegraded, 0))
		return
	}
	// The fleet root span. Its trace ID derives from the client frame ID
	// and a per-router forward ordinal (fwdSeq bumps whether or not tracing
	// is armed): no rng is touched, and a disabled tracer returns nil spans
	// whose methods are all no-ops. Each attempt gets a fleet.hop child;
	// the forwarded frame carries (trace ID, hop span ID) so the replica's
	// serve.request span parents under its hop.
	tid := trace.Derive(0xf1ee70b5, uint64(f.ID), r.fwdSeq.Add(1))
	root := r.cfg.Tracer.Start("fleet.request", tid)
	root.SetStr("client", from.String())
	hops := make([]*trace.Span, 0, len(prefs))
	hopOpen := make([]bool, 0, len(prefs))
	starts := make([]time.Time, 0, len(prefs))
	closeHop := func(attempt int, outcome string) {
		if attempt < len(hops) && hopOpen[attempt] {
			hops[attempt].SetStr("outcome", outcome)
			hops[attempt].End()
			hopOpen[attempt] = false
		}
	}
	finishRoot := func(flags trace.Flags) {
		for i := range hops {
			closeHop(i, "cancelled")
		}
		root.SetNum("attempts", float64(len(hops)))
		root.Finish(flags)
	}
	origID := f.ID
	var expiry time.Time
	if d := f.Deadline(); d > 0 {
		expiry = time.Now().Add(d)
	}
	deadline := time.Now().Add(r.cfg.ForwardTimeout)
	if !expiry.IsZero() && expiry.Before(deadline) {
		deadline = expiry // the client stops listening before we stop trying
	}
	resCh := make(chan fwdResult, len(prefs))

	// giveUp answers the client when no attempt can succeed anymore: an
	// exhausted deadline budget is StatusExpired (with the lateness), an
	// exhausted candidate list is StatusDegraded.
	giveUp := func() {
		r.fleetSLO.Observe(false)
		if late := lateBy(expiry); late > 0 {
			expiredCount.Inc()
			root.SetStr("outcome", "expired")
			finishRoot(trace.FlagError)
			r.writeTo(conn, from, airproto.ExpiredNack(origID, late))
			return
		}
		shedCount.Inc()
		root.SetStr("outcome", "shed")
		finishRoot(trace.FlagShed)
		r.writeTo(conn, from, airproto.Nack(origID, airproto.StatusDegraded, 0))
	}

	next := 0
	launch := func() bool {
		if next >= len(prefs) {
			return false
		}
		var remaining time.Duration
		if !expiry.IsZero() {
			if remaining = time.Until(expiry); remaining <= 0 {
				return false
			}
		}
		m := prefs[next]
		attempt := next
		next++
		id := r.newID()
		ch := r.await(id)
		fwd := *f
		fwd.ID = id
		if remaining > 0 {
			fwd.SetDeadline(remaining)
		}
		hop := root.Child("fleet.hop")
		hop.SetStr("replica", m.name)
		hop.SetNum("attempt", float64(attempt))
		hops = append(hops, hop)
		hopOpen = append(hopOpen, hop != nil)
		starts = append(starts, time.Now())
		if root != nil {
			// Appending the context never aliases the original frame: the
			// copy's Data shares f's full-capacity backing, so append
			// reallocates. Refusals (oversize payload) just forward untraced.
			airproto.AttachTraceContext(&fwd, uint64(tid), uint64(hop.ID()))
		}
		out, err := fwd.Marshal()
		if err != nil {
			resCh <- fwdResult{nil, m, attempt}
			return true
		}
		forwardCount.Inc()
		if _, err := r.up.WriteToUDP(out, m.addr); err != nil {
			resCh <- fwdResult{nil, m, attempt}
			return true
		}
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			defer r.settle(id)
			timer := time.NewTimer(time.Until(deadline))
			defer timer.Stop()
			select {
			case resp := <-ch:
				resCh <- fwdResult{resp, m, attempt}
			case <-timer.C:
				resCh <- fwdResult{nil, m, attempt}
			case <-r.stop:
				resCh <- fwdResult{nil, m, attempt}
			}
		}()
		return true
	}

	if !launch() {
		giveUp() // budget already dead on arrival
		return
	}
	outstanding := 1
	hedge := time.NewTimer(r.cfg.HedgeAfter)
	defer hedge.Stop()
	overall := time.NewTimer(time.Until(deadline))
	defer overall.Stop()
	for {
		select {
		case res := <-resCh:
			outstanding--
			now := time.Now()
			failed := res.f == nil || (res.f.IsNack() &&
				(res.f.Code == airproto.StatusDegraded || res.f.Code == airproto.StatusRetryAfter))
			r.det.ReportForward(res.m.name, failed, now)
			if res.attempt < len(starts) {
				r.det.ReportLatency(res.m.name, now.Sub(starts[res.attempt]), !failed, now)
			}
			if !failed {
				// Success — or a fatal NACK (wrong length, bad frame, no
				// trace, expired-at-the-replica), which is the client's
				// answer too: relaying it beats a silent timeout.
				reply := *res.f
				reply.ID = origID
				r.writeTo(conn, from, &reply)
				if res.attempt > 0 {
					hedgedWinCount.Inc()
				}
				t.ObserveInto(forwardSeconds)
				closeHop(res.attempt, "won")
				var flags trace.Flags
				if res.f.IsNack() {
					flags = trace.FlagNack
				}
				finishRoot(flags) // the losing hedged hops close as cancelled
				elapsed := time.Since(start)
				r.fleetSLO.Observe(!res.f.IsNack() && elapsed <= r.cfg.Detector.SLOTarget)
				return
			}
			closeHop(res.attempt, "failed")
			if res.f != nil {
				// Explicit shed NACK: fail over immediately rather than
				// waiting out the hedge timer.
				if launch() {
					failoverCount.Inc()
					outstanding++
				}
			}
			if outstanding == 0 {
				giveUp()
				return
			}
		case <-hedge.C:
			if launch() {
				outstanding++
			}
			hedge.Reset(r.cfg.HedgeAfter)
		case <-overall.C:
			giveUp()
			return
		case <-r.stop:
			return
		}
	}
}

// lateBy reports how far past a nonzero expiry the clock is (0 when the
// expiry is zero or still ahead).
func lateBy(expiry time.Time) time.Duration {
	if expiry.IsZero() {
		return 0
	}
	if late := time.Since(expiry); late > 0 {
		return late
	}
	return 0
}
