package fleet

import "testing"

func TestRingRouteDistinctAndStable(t *testing.T) {
	r := NewRing()
	for _, m := range []string{"a", "b", "c", "d"} {
		r.Add(m)
	}
	for key := uint64(0); key < 100; key++ {
		got := r.Route(key, 3)
		if len(got) != 3 {
			t.Fatalf("key %d: %d members, want 3", key, len(got))
		}
		seen := map[string]bool{}
		for _, m := range got {
			if seen[m] {
				t.Fatalf("key %d: duplicate member %s", key, m)
			}
			seen[m] = true
		}
		// Same key, same preference list.
		again := r.Route(key, 3)
		for i := range got {
			if got[i] != again[i] {
				t.Fatalf("key %d: routing not deterministic", key)
			}
		}
	}
}

func TestRingRemoveOnlyMovesVictimKeys(t *testing.T) {
	// The consistent-hashing property: removing one member must only remap
	// keys that were routed to it — every other key's primary is unchanged.
	r := NewRing()
	for _, m := range []string{"a", "b", "c", "d", "e"} {
		r.Add(m)
	}
	before := map[uint64]string{}
	for key := uint64(0); key < 500; key++ {
		before[key] = r.Route(key, 1)[0]
	}
	r.Remove("c")
	for key, prev := range before {
		now := r.Route(key, 1)[0]
		if prev != "c" && now != prev {
			t.Fatalf("key %d moved %s -> %s though only c was removed", key, prev, now)
		}
		if now == "c" {
			t.Fatalf("key %d still routes to the removed member", key)
		}
	}
}

func TestRingBalance(t *testing.T) {
	// With 64 vnodes per member the primary load should be roughly uniform:
	// no member owns more than 2.5x its fair share over many keys.
	r := NewRing()
	members := []string{"r1", "r2", "r3", "r4", "r5"}
	for _, m := range members {
		r.Add(m)
	}
	counts := map[string]int{}
	const keys = 5000
	for key := uint64(0); key < keys; key++ {
		counts[r.Route(key, 1)[0]]++
	}
	fair := float64(keys) / float64(len(members))
	for _, m := range members {
		if c := float64(counts[m]); c > 2.5*fair || c < fair/2.5 {
			t.Fatalf("member %s owns %d of %d keys (fair %.0f)", m, counts[m], keys, fair)
		}
	}
}

func TestRingEmptyAndReAdd(t *testing.T) {
	r := NewRing()
	if got := r.Route(1, 3); got != nil {
		t.Fatalf("empty ring routed to %v", got)
	}
	r.Add("a")
	r.Add("a") // idempotent
	if r.Len() != 1 {
		t.Fatalf("double add inflated the ring to %d members", r.Len())
	}
	if got := r.Route(42, 5); len(got) != 1 || got[0] != "a" {
		t.Fatalf("single-member ring routed to %v", got)
	}
	r.Remove("a")
	r.Remove("a") // idempotent
	if r.Len() != 0 || len(r.points) != 0 {
		t.Fatal("remove left vnodes behind")
	}
}
