package fleet

import (
	"testing"
	"time"

	"repro/internal/rng"
)

func testClock() (func() time.Time, func(time.Duration)) {
	now := time.Unix(1_700_000_000, 0)
	return func() time.Time { return now }, func(d time.Duration) { now = now.Add(d) }
}

func TestDetectorSuspectsAfterConsecutiveMisses(t *testing.T) {
	now, advance := testClock()
	d := NewDetector(DetectorConfig{SuspectMisses: 3}, rng.New(1))
	if st := d.Observe("r1", false, now()); st != Alive {
		t.Fatalf("one miss -> %v", st)
	}
	// An intervening success resets the streak.
	d.Observe("r1", true, now())
	d.Observe("r1", false, now())
	if st := d.Observe("r1", false, now()); st != Alive {
		t.Fatalf("two misses after reset -> %v", st)
	}
	if st := d.Observe("r1", false, now()); st != Suspect {
		t.Fatalf("three consecutive misses -> %v, want Suspect", st)
	}
	advance(time.Minute)
	if !d.ShouldProbe("r1", now()) {
		t.Fatal("suspect member not probeable after its backoff")
	}
}

func TestDetectorJitteredExponentialProbingThenEviction(t *testing.T) {
	now, advance := testClock()
	cfg := DetectorConfig{SuspectMisses: 1, ProbeBase: 100 * time.Millisecond, ProbeMax: 10 * time.Second, ProbeLimit: 3}
	d := NewDetector(cfg, rng.New(7))
	d.Observe("r1", false, now()) // -> Suspect, probe scheduled
	if d.State("r1") != Suspect {
		t.Fatal("not suspect after the miss")
	}
	// Immediately after suspicion the first probe is not yet due: the
	// jittered delay is at least base/2.
	if d.ShouldProbe("r1", now()) {
		t.Fatal("probe due instantly; backoff not applied")
	}
	prev := time.Duration(0)
	for probe := 0; probe < cfg.ProbeLimit-1; probe++ {
		// Find when the probe comes due; the gap must grow (exponential
		// schedule, jitter in [0.5, 1.5) around base·2^k keeps successive
		// windows disjoint).
		var waited time.Duration
		for !d.ShouldProbe("r1", now()) {
			advance(10 * time.Millisecond)
			waited += 10 * time.Millisecond
			if waited > time.Minute {
				t.Fatal("probe never came due")
			}
		}
		if probe > 0 && waited <= prev/4 {
			t.Fatalf("probe %d due after %v, not exponentially spaced (prev %v)", probe, waited, prev)
		}
		prev = waited
		if st := d.Observe("r1", false, now()); probe < cfg.ProbeLimit-2 && st != Suspect {
			t.Fatalf("probe %d failed -> %v", probe, st)
		}
	}
	// The final allowed probe failure evicts.
	for !d.ShouldProbe("r1", now()) {
		advance(10 * time.Millisecond)
	}
	if st := d.Observe("r1", false, now()); st != Evicted {
		t.Fatalf("exhausted probes -> %v, want Evicted", st)
	}
	if d.ShouldProbe("r1", now().Add(time.Hour)) {
		t.Fatal("evicted member still probed")
	}
	// Only revival brings it back.
	d.Revive("r1")
	if d.State("r1") != Alive {
		t.Fatal("revive did not restore Alive")
	}
}

func TestDetectorSuspectRecoversOnSuccess(t *testing.T) {
	now, _ := testClock()
	d := NewDetector(DetectorConfig{SuspectMisses: 1}, rng.New(3))
	d.Observe("r1", false, now())
	if d.State("r1") != Suspect {
		t.Fatal("not suspect")
	}
	if st := d.Observe("r1", true, now()); st != Alive {
		t.Fatalf("successful probe -> %v, want Alive", st)
	}
}

func TestDetectorNackRateSuspicion(t *testing.T) {
	now, _ := testClock()
	d := NewDetector(DetectorConfig{NackWindow: 8, NackFrac: 0.5}, rng.New(5))
	// 3 failures in a window of 8: under the fraction, still trusted.
	for i := 0; i < 5; i++ {
		d.ReportForward("r1", false, now())
	}
	for i := 0; i < 3; i++ {
		if st := d.ReportForward("r1", true, now()); st != Alive {
			t.Fatalf("under-threshold failures -> %v", st)
		}
	}
	// Push the trailing window to 4/8 failures: suspicion trips without a
	// single missed heartbeat.
	if st := d.ReportForward("r1", true, now()); st != Suspect {
		t.Fatalf("50%% forward failures -> %v, want Suspect", st)
	}
	// Counts reflect the state machine.
	d.Observe("r2", true, now())
	alive, suspect, evicted := d.Counts()
	if alive != 1 || suspect != 1 || evicted != 0 {
		t.Fatalf("counts = (%d, %d, %d), want (1, 1, 0)", alive, suspect, evicted)
	}
}

func TestDetectorUnknownMemberIsTrusted(t *testing.T) {
	d := NewDetector(DetectorConfig{}, rng.New(1))
	if d.State("never-seen") != Alive {
		t.Fatal("unknown member distrusted")
	}
}
