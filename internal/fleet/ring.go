package fleet

import "sort"

// ringVnodes is how many points each member contributes to the hash ring.
// 64 keeps the per-member load spread within a few percent of uniform for
// the fleet sizes this tier targets (single digits to tens of replicas).
const ringVnodes = 64

// Ring is a consistent-hash ring over member names. Routing a key walks the
// ring clockwise from the key's position and collects distinct members in
// ring order — the natural failover sequence: when the primary for a key
// dies, its traffic lands on the next member, and every other key's
// placement is undisturbed.
type Ring struct {
	points  []ringPoint // sorted by hash
	members map[string]struct{}
}

type ringPoint struct {
	hash   uint64
	member string
}

func NewRing() *Ring {
	return &Ring{members: make(map[string]struct{})}
}

// mix64 is SplitMix64's finalizer — a cheap, well-distributed 64-bit mixer.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// hashString is FNV-1a, inlined to keep the ring dependency-free.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// Add inserts a member's vnodes; re-adding is a no-op.
func (r *Ring) Add(member string) {
	if _, ok := r.members[member]; ok {
		return
	}
	r.members[member] = struct{}{}
	base := hashString(member)
	for v := 0; v < ringVnodes; v++ {
		r.points = append(r.points, ringPoint{hash: mix64(base + uint64(v)*0x9e3779b97f4a7c15), member: member})
	}
	sort.Slice(r.points, func(a, b int) bool { return r.points[a].hash < r.points[b].hash })
}

// Remove deletes a member and all its vnodes.
func (r *Ring) Remove(member string) {
	if _, ok := r.members[member]; !ok {
		return
	}
	delete(r.members, member)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.member != member {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Has reports membership.
func (r *Ring) Has(member string) bool {
	_, ok := r.members[member]
	return ok
}

// Members returns the member names in stable (sorted) order.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.members) }

// Route returns up to n distinct members in ring order starting at key's
// position — the preference list for a request: index 0 is the primary,
// the rest are failover targets.
func (r *Ring) Route(key uint64, n int) []string {
	if len(r.points) == 0 || n < 1 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	h := mix64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, n)
	seen := make(map[string]struct{}, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if _, dup := seen[p.member]; dup {
			continue
		}
		seen[p.member] = struct{}{}
		out = append(out, p.member)
	}
	return out
}
