package fleet

import (
	"bytes"
	"testing"

	"repro/internal/airproto"
	"repro/internal/rng"
)

func testSealed(n int, seed uint64) []byte {
	src := rng.New(seed)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(src.IntN(256))
	}
	return b
}

func TestChunksRoundTripInOrder(t *testing.T) {
	sealed := testSealed(10_000, 1)
	frames, err := Chunks(7, airproto.PushCommit, sealed, 1024, 0xa1)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) != 10 {
		t.Fatalf("%d chunks for 10000 bytes at 1024, want 10", len(frames))
	}
	ra := NewReassembler()
	for i, f := range frames {
		got, mode, done, err := ra.Add(f)
		if err != nil {
			t.Fatalf("chunk %d: %v", i, err)
		}
		if mode != airproto.PushCommit {
			t.Fatalf("chunk %d: mode %d", i, mode)
		}
		if done != (i == len(frames)-1) {
			t.Fatalf("chunk %d: done=%v", i, done)
		}
		if done && !bytes.Equal(got, sealed) {
			t.Fatal("reassembled bytes differ")
		}
	}
}

func TestChunksSurviveWire(t *testing.T) {
	// Every chunk must fit an airproto datagram and round-trip through
	// Marshal/Unmarshal — the reassembler sees wire frames, not originals.
	sealed := testSealed(3_000, 2)
	frames, err := Chunks(9, airproto.PushCanary, sealed, 0, 0xa1) // default chunking
	if err != nil {
		t.Fatal(err)
	}
	ra := NewReassembler()
	var got []byte
	for _, f := range frames {
		b, err := f.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		wf, err := airproto.Unmarshal(b)
		if err != nil {
			t.Fatal(err)
		}
		if out, _, done, err := ra.Add(wf); err != nil {
			t.Fatal(err)
		} else if done {
			got = out
		}
	}
	if !bytes.Equal(got, sealed) {
		t.Fatal("wire round trip corrupted the epoch")
	}
}

func TestReassemblerOutOfOrderAndDuplicates(t *testing.T) {
	sealed := testSealed(5_000, 3)
	frames, err := Chunks(11, airproto.PushCommit, sealed, 700, 0xa1)
	if err != nil {
		t.Fatal(err)
	}
	// Shuffle deterministically and duplicate every chunk.
	src := rng.New(4)
	order := src.Perm(len(frames))
	ra := NewReassembler()
	var got []byte
	for _, i := range order {
		out, _, done, err := ra.Add(frames[i])
		if err != nil {
			t.Fatal(err)
		}
		if done {
			got = out
		}
		// Duplicate: idempotent, never re-completes.
		if _, _, done, err := ra.Add(frames[i]); err != nil || done {
			t.Fatalf("duplicate chunk %d: done=%v err=%v", i, done, err)
		}
	}
	if !bytes.Equal(got, sealed) {
		t.Fatal("out-of-order reassembly corrupted the epoch")
	}
}

func TestReassemblerRejectsShapeShift(t *testing.T) {
	sealed := testSealed(2_000, 5)
	frames, _ := Chunks(13, airproto.PushCommit, sealed, 600, 0xa1)
	ra := NewReassembler()
	if _, _, _, err := ra.Add(frames[0]); err != nil {
		t.Fatal(err)
	}
	// Same transfer ID, different mode: the transfer must drop, not blend.
	evil, _ := Chunks(13, airproto.PushRollback, sealed, 600, 0xa1)
	if _, _, _, err := ra.Add(evil[1]); err == nil {
		t.Fatal("mode flip mid-transfer accepted")
	}
	if len(ra.m) != 0 {
		t.Fatal("poisoned transfer not dropped")
	}
	// Same transfer ID, different coordinator incarnation: chunks from two
	// incarnations carry different bytes and must never blend either.
	if _, _, _, err := ra.Add(frames[0]); err != nil {
		t.Fatal(err)
	}
	other, _ := Chunks(13, airproto.PushCommit, sealed, 600, 0xb2)
	if _, _, _, err := ra.Add(other[1]); err == nil {
		t.Fatal("nonce flip mid-transfer accepted")
	}
	if len(ra.m) != 0 {
		t.Fatal("cross-incarnation transfer not dropped")
	}
}

func TestReassemblerEvictsOldestPartial(t *testing.T) {
	ra := NewReassembler()
	for tid := uint32(1); tid <= maxTransfers+1; tid++ {
		frames, _ := Chunks(tid, airproto.PushCommit, testSealed(2_000, uint64(tid)), 600, 0xa1)
		if _, _, _, err := ra.Add(frames[0]); err != nil {
			t.Fatal(err)
		}
	}
	if len(ra.m) != maxTransfers {
		t.Fatalf("%d transfers held, cap %d", len(ra.m), maxTransfers)
	}
	if _, ok := ra.m[1]; ok {
		t.Fatal("oldest partial transfer not evicted")
	}
}

func TestChunksRejectsEmptyAndOversized(t *testing.T) {
	if _, err := Chunks(1, airproto.PushCommit, nil, 100, 0); err == nil {
		t.Fatal("empty epoch chunked")
	}
	if _, err := Chunks(1, airproto.PushCommit, make([]byte, maxTransferBytes+1), 100, 0); err == nil {
		t.Fatal("oversized epoch chunked")
	}
}
