package fleet

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/airproto"
)

func TestAgentAnswersHeartbeat(t *testing.T) {
	a := NewAgent(func() []float64 { return []float64{5, 9, 1} }, nil)
	resp, ok := a.HandleFrame(airproto.Heartbeat(77))
	if !ok || resp.Kind != airproto.KindHeartbeat || resp.ID != 77 {
		t.Fatalf("heartbeat answered with %+v (ok=%v)", resp, ok)
	}
	hv := resp.HealthVector()
	if hv[airproto.HBFleetSeq] != 5 || hv[airproto.HBEpochSeq] != 9 {
		t.Fatalf("health vector %v", hv)
	}
	// A heartbeat REPLY (non-empty data) is not ours to answer: replying
	// would ping-pong between two replicas forever.
	if _, ok := a.HandleFrame(resp); ok {
		t.Fatal("agent answered a heartbeat reply")
	}
}

func TestAgentAppliesChunkedPushOnce(t *testing.T) {
	sealed := testSealed(4_000, 9)
	applies := 0
	a := NewAgent(nil, func(got []byte, mode uint8, tid uint32) (float64, error) {
		applies++
		if !bytes.Equal(got, sealed) {
			t.Fatal("apply saw different bytes")
		}
		if mode != airproto.PushCanary || tid != 21 {
			t.Fatalf("apply(mode=%d, tid=%d)", mode, tid)
		}
		return 0.9375, nil
	})
	frames, err := Chunks(21, airproto.PushCanary, sealed, 900, 0x77)
	if err != nil {
		t.Fatal(err)
	}
	var final *airproto.Frame
	for i, f := range frames {
		ack, ok := a.HandleFrame(f)
		if !ok {
			t.Fatalf("chunk %d unanswered", i)
		}
		if i < len(frames)-1 {
			if ack.Code != airproto.AckChunk {
				t.Fatalf("chunk %d acked with code %d", i, ack.Code)
			}
			if idx, _, _, _ := ack.AckInfo(); idx != i {
				t.Fatalf("chunk %d acked as index %d", i, idx)
			}
		} else {
			final = ack
		}
	}
	if final.Code != airproto.AckApplied {
		t.Fatalf("final ack code %d", final.Code)
	}
	if _, agree, seq, _ := final.AckInfo(); agree != 0.9375 || seq != 21 {
		t.Fatalf("final ack (agreement %v, seq %d)", agree, seq)
	}
	if applies != 1 {
		t.Fatalf("apply ran %d times", applies)
	}
	if a.FleetSeq() != 21 {
		t.Fatalf("fleet seq %d after apply", a.FleetSeq())
	}

	// A retransmitted chunk after completion — ANY chunk of the transfer —
	// returns the cached final verdict without re-applying.
	for _, f := range []*airproto.Frame{frames[0], frames[len(frames)-1]} {
		ack, ok := a.HandleFrame(f)
		if !ok || ack.Code != airproto.AckApplied {
			t.Fatalf("retransmit answered with %+v", ack)
		}
	}
	if applies != 1 {
		t.Fatalf("retransmit re-applied (%d applies)", applies)
	}
}

func TestAgentRejectsFailingApply(t *testing.T) {
	sealed := testSealed(1_000, 10)
	var fail = true
	applies := 0
	a := NewAgent(nil, func([]byte, uint8, uint32) (float64, error) {
		applies++
		if fail {
			return 0.25, fmt.Errorf("bad epoch")
		}
		return 1, nil
	})
	frames, _ := Chunks(5, airproto.PushCommit, sealed, 600, 0x77)
	var final *airproto.Frame
	for _, f := range frames {
		final, _ = a.HandleFrame(f)
	}
	if final.Code != airproto.AckRejected {
		t.Fatalf("failing apply acked with code %d", final.Code)
	}
	if a.FleetSeq() != 0 {
		t.Fatal("rejected transfer advanced the fleet seq")
	}
	// Rejections are NOT cached: the failure may have been the wire's fault
	// (a corrupted chunk tearing the sealed bytes), so a full coordinator
	// retry must reassemble and re-apply for real instead of being answered
	// from a poisoned verdict. Here the retry's apply succeeds, proving the
	// replica gave the bytes a second chance.
	fail = false
	for _, f := range frames {
		final, _ = a.HandleFrame(f)
	}
	if final.Code != airproto.AckApplied {
		t.Fatalf("retry after rejection acked with code %d, want applied", final.Code)
	}
	if applies != 2 {
		t.Fatalf("retry ran apply %d times, want 2", applies)
	}
	if a.FleetSeq() != 5 {
		t.Fatalf("fleet seq %d after successful retry", a.FleetSeq())
	}
}

// TestAgentIgnoresCorruptChunk is the bad-wire contract: a push chunk
// mangled in flight (failing its per-chunk digest) earns NO reply — not a
// rejection, which would abort the coordinator's whole push — and leaves
// the in-progress reassembly untouched, so a clean re-send of the same
// chunk completes the transfer as if the corruption were a drop.
func TestAgentIgnoresCorruptChunk(t *testing.T) {
	sealed := testSealed(4_000, 14)
	applies := 0
	a := NewAgent(nil, func(got []byte, mode uint8, tid uint32) (float64, error) {
		applies++
		if !bytes.Equal(got, sealed) {
			t.Fatal("apply saw torn bytes")
		}
		return 1, nil
	})
	frames, err := Chunks(9, airproto.PushCommit, sealed, 900, 0x77)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) < 3 {
		t.Fatalf("want a multi-chunk transfer, got %d frames", len(frames))
	}
	var final *airproto.Frame
	for i, f := range frames {
		// Deliver a corrupted copy first: one payload sample off by one, as
		// wire corruption would leave it after Unmarshal still parses.
		bad := *f
		bad.Data = append([]complex128(nil), f.Data...)
		bad.Data[3] = complex(real(bad.Data[3])+1, imag(bad.Data[3]))
		if reply, ok := a.HandleFrame(&bad); ok || reply != nil {
			t.Fatalf("corrupt chunk %d earned a reply: %+v", i, reply)
		}
		// The clean re-send must still be acked and the transfer proceed.
		ack, ok := a.HandleFrame(f)
		if !ok || ack == nil {
			t.Fatalf("clean re-send of chunk %d unanswered", i)
		}
		final = ack
	}
	if final.Code != airproto.AckApplied || applies != 1 {
		t.Fatalf("transfer after per-chunk corruption: code %d, %d applies", final.Code, applies)
	}
	if a.FleetSeq() != 9 {
		t.Fatalf("fleet seq %d after apply", a.FleetSeq())
	}

	// A corrupt chunk whose mangled ID collides with the completed transfer
	// must not evict its cached verdict: the next clean retransmit is still
	// answered from cache, without re-applying.
	bad := *frames[0]
	bad.Data = append([]complex128(nil), frames[0].Data...)
	bad.Data[1] = complex(real(bad.Data[1]), imag(bad.Data[1])+1) // nonce flipped in flight
	if reply, ok := a.HandleFrame(&bad); ok || reply != nil {
		t.Fatalf("corrupt retransmit earned a reply: %+v", reply)
	}
	ack, ok := a.HandleFrame(frames[0])
	if !ok || ack.Code != airproto.AckApplied || applies != 1 {
		t.Fatalf("cached verdict lost after corrupt retransmit: %+v (%d applies)", ack, applies)
	}
}

func TestAgentNilApplyRejects(t *testing.T) {
	frames, _ := Chunks(3, airproto.PushCommit, testSealed(100, 11), 600, 0x77)
	a := NewAgent(nil, nil)
	ack, ok := a.HandleFrame(frames[0])
	if !ok || ack.Code != airproto.AckRejected {
		t.Fatalf("heartbeat-only agent answered a push with %+v", ack)
	}
}

// TestAgentNewIncarnationBustsAckCache is the coordinator-restart
// regression: transfer IDs restart from 1 with every coordinator process,
// so a chunk reusing a cached transfer's ID under a DIFFERENT incarnation
// nonce carries different bytes and must be reassembled and applied for
// real — answering it from the cached verdict would silently diverge the
// replica from the fleet.
func TestAgentNewIncarnationBustsAckCache(t *testing.T) {
	first := testSealed(2_000, 12)
	second := testSealed(2_000, 13)
	var applied [][]byte
	a := NewAgent(nil, func(sealed []byte, mode uint8, tid uint32) (float64, error) {
		applied = append(applied, append([]byte(nil), sealed...))
		return 1, nil
	})

	push := func(sealed []byte, nonce uint32) *airproto.Frame {
		t.Helper()
		frames, err := Chunks(1, airproto.PushCommit, sealed, 600, nonce)
		if err != nil {
			t.Fatal(err)
		}
		var final *airproto.Frame
		for _, f := range frames {
			final, _ = a.HandleFrame(f)
		}
		return final
	}

	// Incarnation A publishes transfer 1 and the verdict is cached.
	if ack := push(first, 0xaaa); ack.Code != airproto.AckApplied {
		t.Fatalf("first publish acked with code %d", ack.Code)
	}
	if _, nonce := a.FleetVersion(); nonce != 0xaaa {
		t.Fatalf("fleet nonce %#x after first apply", nonce)
	}

	// A restarted coordinator (incarnation B) reuses transfer ID 1 for new
	// bytes. The cached ack must NOT answer it; the new epoch must apply.
	if ack := push(second, 0xbbb); ack.Code != airproto.AckApplied {
		t.Fatalf("post-restart publish acked with code %d", ack.Code)
	}
	if len(applied) != 2 || !bytes.Equal(applied[1], second) {
		t.Fatalf("post-restart transfer answered from cache (%d applies)", len(applied))
	}
	if seq, nonce := a.FleetVersion(); seq != 1 || nonce != 0xbbb {
		t.Fatalf("fleet version (%d, %#x) after restart publish", seq, nonce)
	}

	// Retransmits of incarnation B's transfer hit the refreshed cache, and
	// the completing ack echoes B's nonce.
	frames, _ := Chunks(1, airproto.PushCommit, second, 600, 0xbbb)
	ack, _ := a.HandleFrame(frames[0])
	if ack.Code != airproto.AckApplied {
		t.Fatalf("retransmit under the new incarnation answered with code %d", ack.Code)
	}
	if _, _, _, nonce := ack.AckInfo(); nonce != 0xbbb {
		t.Fatalf("cached ack echoes nonce %#x, want 0xbbb", nonce)
	}
	if len(applied) != 2 {
		t.Fatalf("retransmit re-applied (%d applies)", len(applied))
	}
}

func TestAgentIgnoresJoinReplies(t *testing.T) {
	a := NewAgent(nil, nil)
	if _, ok := a.HandleFrame(airproto.Join(1, 2, 3, 4)); ok {
		t.Fatal("agent answered a join frame")
	}
}
