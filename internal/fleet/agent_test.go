package fleet

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/airproto"
)

func TestAgentAnswersHeartbeat(t *testing.T) {
	a := NewAgent(func() []float64 { return []float64{5, 9, 1} }, nil)
	resp, ok := a.HandleFrame(airproto.Heartbeat(77))
	if !ok || resp.Kind != airproto.KindHeartbeat || resp.ID != 77 {
		t.Fatalf("heartbeat answered with %+v (ok=%v)", resp, ok)
	}
	hv := resp.HealthVector()
	if hv[airproto.HBFleetSeq] != 5 || hv[airproto.HBEpochSeq] != 9 {
		t.Fatalf("health vector %v", hv)
	}
	// A heartbeat REPLY (non-empty data) is not ours to answer: replying
	// would ping-pong between two replicas forever.
	if _, ok := a.HandleFrame(resp); ok {
		t.Fatal("agent answered a heartbeat reply")
	}
}

func TestAgentAppliesChunkedPushOnce(t *testing.T) {
	sealed := testSealed(4_000, 9)
	applies := 0
	a := NewAgent(nil, func(got []byte, mode uint8, tid uint32) (float64, error) {
		applies++
		if !bytes.Equal(got, sealed) {
			t.Fatal("apply saw different bytes")
		}
		if mode != airproto.PushCanary || tid != 21 {
			t.Fatalf("apply(mode=%d, tid=%d)", mode, tid)
		}
		return 0.9375, nil
	})
	frames, err := Chunks(21, airproto.PushCanary, sealed, 900)
	if err != nil {
		t.Fatal(err)
	}
	var final *airproto.Frame
	for i, f := range frames {
		ack, ok := a.HandleFrame(f)
		if !ok {
			t.Fatalf("chunk %d unanswered", i)
		}
		if i < len(frames)-1 {
			if ack.Code != airproto.AckChunk {
				t.Fatalf("chunk %d acked with code %d", i, ack.Code)
			}
			if idx, _, _ := ack.AckInfo(); idx != i {
				t.Fatalf("chunk %d acked as index %d", i, idx)
			}
		} else {
			final = ack
		}
	}
	if final.Code != airproto.AckApplied {
		t.Fatalf("final ack code %d", final.Code)
	}
	if _, agree, seq := final.AckInfo(); agree != 0.9375 || seq != 21 {
		t.Fatalf("final ack (agreement %v, seq %d)", agree, seq)
	}
	if applies != 1 {
		t.Fatalf("apply ran %d times", applies)
	}
	if a.FleetSeq() != 21 {
		t.Fatalf("fleet seq %d after apply", a.FleetSeq())
	}

	// A retransmitted chunk after completion — ANY chunk of the transfer —
	// returns the cached final verdict without re-applying.
	for _, f := range []*airproto.Frame{frames[0], frames[len(frames)-1]} {
		ack, ok := a.HandleFrame(f)
		if !ok || ack.Code != airproto.AckApplied {
			t.Fatalf("retransmit answered with %+v", ack)
		}
	}
	if applies != 1 {
		t.Fatalf("retransmit re-applied (%d applies)", applies)
	}
}

func TestAgentRejectsFailingApply(t *testing.T) {
	sealed := testSealed(1_000, 10)
	a := NewAgent(nil, func([]byte, uint8, uint32) (float64, error) {
		return 0.25, fmt.Errorf("bad epoch")
	})
	frames, _ := Chunks(5, airproto.PushCommit, sealed, 600)
	var final *airproto.Frame
	for _, f := range frames {
		final, _ = a.HandleFrame(f)
	}
	if final.Code != airproto.AckRejected {
		t.Fatalf("failing apply acked with code %d", final.Code)
	}
	if a.FleetSeq() != 0 {
		t.Fatal("rejected transfer advanced the fleet seq")
	}
	// The rejection is cached too.
	ack, _ := a.HandleFrame(frames[0])
	if ack.Code != airproto.AckRejected {
		t.Fatalf("cached rejection lost: code %d", ack.Code)
	}
}

func TestAgentNilApplyRejects(t *testing.T) {
	frames, _ := Chunks(3, airproto.PushCommit, testSealed(100, 11), 600)
	a := NewAgent(nil, nil)
	ack, ok := a.HandleFrame(frames[0])
	if !ok || ack.Code != airproto.AckRejected {
		t.Fatalf("heartbeat-only agent answered a push with %+v", ack)
	}
}

func TestAgentIgnoresJoinReplies(t *testing.T) {
	a := NewAgent(nil, nil)
	if _, ok := a.HandleFrame(airproto.Join(1, 2, 3)); ok {
		t.Fatal("agent answered a join frame")
	}
}
