package fleet

import "repro/internal/obs"

// Fleet-tier metrics. The router aggregates these process-wide for the obs
// sidecar; per-replica truth stays on each replica's own counters:
//
//	fleet.replicas.live     members the detector currently trusts
//	fleet.replicas.suspect  members under jittered exponential probing
//	fleet.replicas.evicted  members removed after exhausting their probes
//	fleet.joins             join announcements accepted (first contact or rejoin)
//	fleet.forwards          client requests routed to a replica
//	fleet.failovers         forwards retried on another replica after a failure
//	fleet.hedged_wins       forwards answered by a hedge, not the first pick
//	fleet.shed              requests NACKed at the router (no live replica or
//	                        the inflight cap, which scales with live count)
//	fleet.expired           requests whose deadline budget died at the router
//	                        (StatusExpired sent without burning a replica)
//	fleet.publishes         epoch publications fanned out fleet-wide
//	fleet.publish.chunks    replication chunk frames sent (retries included)
//	fleet.rollbacks         fleet-wide rollbacks to the prior epoch
//	fleet.canary_rejects    publications stopped at the canary gate
//	fleet.catchups          anti-entropy pushes to stale or rejoined replicas
//	fleet.forward.seconds   client-observed forward latency through the router
var (
	liveGauge      = obs.NewGauge("fleet.replicas.live")
	suspectGauge   = obs.NewGauge("fleet.replicas.suspect")
	evictedCount   = obs.NewCounter("fleet.replicas.evicted")
	joinCount      = obs.NewCounter("fleet.joins")
	forwardCount   = obs.NewCounter("fleet.forwards")
	failoverCount  = obs.NewCounter("fleet.failovers")
	hedgedWinCount = obs.NewCounter("fleet.hedged_wins")
	shedCount      = obs.NewCounter("fleet.shed")
	expiredCount   = obs.NewCounter("fleet.expired")
	publishCount   = obs.NewCounter("fleet.publishes")
	chunkCount     = obs.NewCounter("fleet.publish.chunks")
	rollbackCount  = obs.NewCounter("fleet.rollbacks")
	canaryRejects  = obs.NewCounter("fleet.canary_rejects")
	catchupCount   = obs.NewCounter("fleet.catchups")
	forwardSeconds = obs.NewLatencyHistogram("fleet.forward.seconds")
)
