package fleet

import (
	"bytes"
	"net"
	"sort"
	"time"

	"repro/internal/airproto"
	"repro/internal/netchaos"
	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// The router's half of the fleet observability plane: merged fleet
// metrics (from the obs.Snapshot blobs replicas piggyback on heartbeat
// replies), versioned fleet-level KindStats answers, and stitched
// cross-replica KindTrace fetches. KindStats and KindTrace are
// CONTROL-PLANE traffic at the router exactly as they are at replicas:
// Serve answers them itself, outside the inflight cap and the admission
// shed — an operator must be able to read a drowning fleet's vitals.

// FleetSnapshot returns the latest per-replica obs snapshots (keyed by
// member name; replicas that have not piggybacked one yet are absent) and
// their bucket-wise merge. The merge is associative/commutative, so the
// result is independent of heartbeat arrival order.
func (r *Router) FleetSnapshot() (merged obs.Snapshot, per map[string]obs.Snapshot) {
	per = make(map[string]obs.Snapshot)
	snaps := make([]obs.Snapshot, 0, 4)
	for _, m := range r.snapshotMembers() {
		if s := m.snap.Load(); s != nil {
			per[m.name] = *s
			snaps = append(snaps, *s)
		}
	}
	return obs.MergeSnapshots(snaps...), per
}

// BurnRate returns the router's fleet-wide SLO error-budget burn over the
// fast and slow windows (0, 0 while SLO tracking is disabled).
func (r *Router) BurnRate() (fast, slow float64) { return r.fleetSLO.BurnRate() }

// HealthScores returns every member's burn-rate health score in (0, 1],
// keyed by name (1 for members with no latency evidence yet).
func (r *Router) HealthScores() map[string]float64 {
	out := make(map[string]float64)
	for _, m := range r.snapshotMembers() {
		out[m.name] = r.det.HealthScore(m.name)
	}
	return out
}

// liveMembersSorted returns the Alive members in name order — the
// deterministic fan-out order for trace fetches and stats exports.
func (r *Router) liveMembersSorted() []*member {
	ms := r.snapshotMembers()
	sort.Slice(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	out := ms[:0]
	for _, m := range ms {
		if r.det.State(m.name) == Alive {
			out = append(out, m)
		}
	}
	return out
}

// answerStats answers a KindStats request at the router with a
// StatsVersionFleet reply: the legacy StatsVector slots carry fleet-wide
// SUMS from the merged replica snapshots (so an old probe pointed at the
// router still reads sensible totals at the same indexes), the FleetStats
// slots carry router-level counters, merged p99, and burn rates, and one
// health-score sample per live replica follows.
func (r *Router) answerStats(conn netchaos.PacketConn, f *airproto.Frame, from *net.UDPAddr) {
	merged, _ := r.FleetSnapshot()
	live := r.liveMembersSorted()
	data := make([]complex128, airproto.FleetStatsVectorLen, airproto.FleetStatsVectorLen+len(live))
	ctr := func(slot int, name string) {
		data[slot] = complex(float64(merged.Counters[name]), 0)
	}
	ctr(airproto.StatServed, "serve.served")
	ctr(airproto.StatHeals, "serve.heals")
	ctr(airproto.StatSwaps, "serve.swaps")
	ctr(airproto.StatRollbacks, "serve.rollbacks")
	ctr(airproto.StatCanaryRejects, "serve.canary_rejects")
	ctr(airproto.StatShed, "serve.shed")
	ctr(airproto.StatExpired, "serve.expired")
	data[airproto.StatEpochSeq] = complex(float64(r.CurrentTid()), 0)

	data[airproto.FleetStatLive] = complex(float64(len(live)), 0)
	data[airproto.FleetStatReplicas] = complex(float64(len(live)), 0)
	data[airproto.FleetStatForwards] = complex(float64(forwardCount.Value()), 0)
	data[airproto.FleetStatFailovers] = complex(float64(failoverCount.Value()), 0)
	data[airproto.FleetStatHedgedWins] = complex(float64(hedgedWinCount.Value()), 0)
	data[airproto.FleetStatShed] = complex(float64(shedCount.Value()), 0)
	data[airproto.FleetStatExpired] = complex(float64(expiredCount.Value()), 0)
	p99 := merged.Histograms["serve.request.seconds"].Quantile(0.99)
	data[airproto.FleetStatP99Micros] = complex(p99*1e6, 0)
	fast, slow := r.BurnRate()
	data[airproto.FleetStatBurnFast] = complex(fast, 0)
	data[airproto.FleetStatBurnSlow] = complex(slow, 0)
	for _, m := range live {
		data = append(data, complex(r.det.HealthScore(m.name), 0))
	}
	r.writeTo(conn, from, &airproto.Frame{
		Kind: airproto.KindStats,
		Code: airproto.StatsVersionFleet,
		ID:   f.ID,
		Data: data,
	})
}

// answerTrace resolves a KindTrace fetch fleet-wide: the router's own
// retained root segment (if any) plus every live replica's remote segment
// of the same trace ID, stitched into ONE Chrome-JSON document. With no
// router segment (tracing off at the router, or the trace sampled out)
// the first replica segment found anchors the stitch, so the router
// degrades into a fetch relay. The request's TraceFlagNormalize bit is
// honored locally and propagated on the fan-out.
func (r *Router) answerTrace(conn netchaos.PacketConn, f *airproto.Frame, from *net.UDPAddr) {
	id := f.TraceID()
	opt := trace.ExportOptions{Normalize: f.Code&airproto.TraceFlagNormalize != 0}
	var rootDoc []byte
	if tr, flags := r.cfg.Tracer.Get(trace.ID(id)); tr != nil {
		rootDoc = trace.MarshalJSON(tr, flags, opt)
	}
	var hopDocs [][]byte
	for _, m := range r.liveMembersSorted() {
		doc, ok := r.fetchRemoteTrace(m, id, f.Code)
		if !ok {
			continue
		}
		dup := bytes.Equal(doc, rootDoc)
		for _, seen := range hopDocs {
			dup = dup || bytes.Equal(doc, seen)
		}
		if !dup { // a late duplicate reply can smear across fan-out slots
			hopDocs = append(hopDocs, doc)
		}
	}
	if rootDoc == nil && len(hopDocs) > 0 {
		rootDoc, hopDocs = hopDocs[0], hopDocs[1:]
	}
	if rootDoc == nil {
		r.writeTo(conn, from, airproto.Nack(f.ID, airproto.StatusNoTrace, 0))
		return
	}
	doc := rootDoc
	if len(hopDocs) > 0 {
		doc = trace.StitchJSON(rootDoc, hopDocs...)
	}
	data, n := airproto.PackBytes(doc)
	reply := &airproto.Frame{Kind: airproto.KindTrace, ID: f.ID, Label: int32(n), Data: data}
	if n < len(doc) {
		reply.Code = airproto.StatusNoTrace // truncated, same convention as replicas
	}
	r.writeTo(conn, from, reply)
}

// fetchRemoteTrace pulls one replica's segment of a trace over the
// upstream socket. KindTrace replies echo the trace ID's low half as the
// frame ID (the 64-bit ID rides ID+Label), so the exchange registers on
// that — and because every replica's reply shares it, the fan-out runs
// one member at a time.
func (r *Router) fetchRemoteTrace(m *member, id uint64, code uint8) ([]byte, bool) {
	req := airproto.TraceRequest(id)
	req.Code = code
	ch := r.await(req.ID)
	defer r.settle(req.ID)
	out, err := req.Marshal()
	if err != nil {
		return nil, false
	}
	if _, err := r.up.WriteToUDP(out, m.addr); err != nil {
		return nil, false
	}
	timer := time.NewTimer(r.cfg.HeartbeatTimeout)
	defer timer.Stop()
	for {
		select {
		case f := <-ch:
			if f.IsNack() {
				return nil, false // StatusNoTrace: this replica holds no segment
			}
			if f.Kind != airproto.KindTrace || len(f.Data) == 0 {
				continue // stale datagram matched the ID; keep waiting
			}
			return airproto.UnpackBytes(f.Data, int(f.Label)), true
		case <-timer.C:
			return nil, false
		case <-r.stop:
			return nil, false
		}
	}
}
