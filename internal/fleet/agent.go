package fleet

import (
	"sync"
	"sync/atomic"

	"repro/internal/airproto"
)

// Journal reasons a replica records when it publishes a fleet-applied
// epoch. They mark the epoch as replication-born: a coordinator watching
// that replica's journal must NOT re-publish such epochs (only organic
// deploys, heals, and local rollbacks replicate), or every push would
// bounce back through the fleet forever.
const (
	ReasonReplicate = "replicate"
	ReasonRollback  = "fleet-rollback"
)

// ackCacheSize bounds the per-agent cache of completed-transfer verdicts.
// A retransmitted chunk for a transfer that already APPLIED must be
// answered with the SAME final ack (the coordinator may have missed it),
// not re-applied and not re-reassembled. Entries are keyed by the
// (transfer ID, coordinator nonce) pair: transfer IDs restart from 1 with
// every coordinator incarnation, and a cached verdict about one
// incarnation's bytes must never answer another's. Only AckApplied
// verdicts are cached: a rejection may be the fault of the WIRE (a
// corrupted chunk tearing the reassembly or the sealed bytes), so caching
// it would brick every future retry of the same transfer — the coordinator
// retries the whole push and the replica must reassemble it for real.
const ackCacheSize = 8

// cachedAck is one completed transfer's final verdict, valid only for the
// coordinator incarnation that ran the transfer.
type cachedAck struct {
	nonce uint32
	ack   *airproto.Frame
}

// ApplyFunc installs one replicated epoch on the replica. sealed is the
// complete sealed checkpoint exactly as the coordinator journaled it; mode
// is the airproto push mode (PushCommit, PushCanary, PushRollback); tid is
// the coordinator-assigned transfer/fleet sequence. It returns the measured
// canary agreement (1 when the push is not a canary or no probes are
// configured) and an error when the epoch must be refused — corrupt seal,
// failed validation, wrong dataset, or a deployment that will not build.
type ApplyFunc func(sealed []byte, mode uint8, tid uint32) (agreement float64, err error)

// Agent is the replica-side half of the fleet protocol: it answers the
// router's heartbeats with the replica's health vector and receives chunked
// epoch pushes, reassembling, applying, and acking them. It is wired into
// the serving read loop — one socket carries data, liveness, and
// replication.
type Agent struct {
	health func() []float64
	apply  ApplyFunc

	// fleetVer packs (incarnation nonce << 32 | transfer seq) of the last
	// applied push; 0 until a push lands. One word so heartbeat replies read
	// both halves atomically.
	fleetVer atomic.Uint64

	// snapSource, when set, supplies an encoded obs.Snapshot blob
	// (obs.EncodeSnapshot) to piggyback on heartbeat replies — the
	// replica's contribution to the router's merged fleet snapshot. Nil
	// (the default, and whenever observability is disabled) keeps replies
	// byte-identical to the pre-obs-plane wire.
	snapSource atomic.Pointer[func() []byte]

	mu       sync.Mutex
	reasm    *Reassembler
	acks     map[uint32]cachedAck // final ack per completed transfer
	ackOrder []uint32
}

// NewAgent builds a replica agent. health supplies the HBVector gauges for
// heartbeat replies; apply installs completed epoch transfers (nil refuses
// every push — a heartbeat-only agent).
func NewAgent(health func() []float64, apply ApplyFunc) *Agent {
	if health == nil {
		health = func() []float64 { return nil }
	}
	return &Agent{health: health, apply: apply, reasm: NewReassembler(), acks: make(map[uint32]cachedAck)}
}

// FleetSeq returns the coordinator-assigned sequence of the last epoch this
// agent applied, reported in every heartbeat reply.
func (a *Agent) FleetSeq() uint64 { return a.fleetVer.Load() & 0xffffffff }

// FleetVersion returns the fleet's convergence variable: the sequence of
// the last applied epoch and the incarnation nonce of the coordinator that
// pushed it. The pair is what makes the variable unique across coordinator
// restarts — sequences alone restart from 1 with each incarnation.
func (a *Agent) FleetVersion() (seq uint64, nonce uint32) {
	v := a.fleetVer.Load()
	return v & 0xffffffff, uint32(v >> 32)
}

// SetSnapshotSource installs (or, with nil, removes) the callback that
// supplies an encoded obs.Snapshot blob for heartbeat-reply piggybacking.
// The serving binary wires a throttled obs.EncodeSnapshot of its default
// registry here when the observability sidecar is armed. Safe to call
// concurrently with HandleFrame.
func (a *Agent) SetSnapshotSource(src func() []byte) {
	if src == nil {
		a.snapSource.Store(nil)
		return
	}
	a.snapSource.Store(&src)
}

// attachSnapshot appends the snapshot blob (packed two bytes per sample,
// like trace payloads) after the health vector and records its byte length
// in Label. Routers older than the obs plane ignore both: they read only
// the first HBVectorLen samples and never look at a heartbeat's Label. A
// blob too big for the frame is skipped — liveness must never lose to
// telemetry.
func (a *Agent) attachSnapshot(reply *airproto.Frame) {
	srcp := a.snapSource.Load()
	if srcp == nil {
		return
	}
	blob := (*srcp)()
	if len(blob) == 0 {
		return
	}
	samples, n := airproto.PackBytes(blob)
	if n < len(blob) || len(reply.Data)+len(samples) > airproto.MaxVector {
		return
	}
	reply.Data = append(reply.Data, samples...)
	reply.Label = int32(n)
}

// HandleFrame processes one fleet-control frame and returns the reply to
// send, or ok=false when the frame needs no answer (join replies, other
// router-side frames that reached a replica, and push chunks corrupted in
// flight, which the coordinator re-sends on timeout).
func (a *Agent) HandleFrame(f *airproto.Frame) (*airproto.Frame, bool) {
	switch f.Kind {
	case airproto.KindHeartbeat:
		if len(f.Data) > 0 {
			return nil, false // a reply, not a ping; not ours to answer
		}
		reply := airproto.HeartbeatReply(f.ID, a.health())
		a.attachSnapshot(reply)
		return reply, true
	case airproto.KindEpochPush:
		if reply := a.handlePush(f); reply != nil {
			return reply, true
		}
		// Chunk corrupted on the wire (per-chunk digest failed): silence.
		// The coordinator's stop-and-wait re-sends it exactly like a drop.
		return nil, false
	}
	// KindJoin replies (and any stray KindEpochAck) land here: consumed
	// silently so a replica never answers a reply with a reply.
	return nil, false
}

func (a *Agent) handlePush(f *airproto.Frame) *airproto.Frame {
	a.mu.Lock()
	defer a.mu.Unlock()
	_, _, _, nonce, ok := f.ChunkPayload()
	if !ok {
		// The digest failed or the headers lie: this chunk was mangled in
		// flight (even its transfer ID may be garbage), so it must not touch
		// any transfer's state, evict any cached verdict, or earn a NACK —
		// answering would let one corrupt datagram abort a healthy transfer.
		return nil
	}
	if cached, ok := a.acks[f.ID]; ok {
		if cached.nonce == nonce {
			// The transfer already completed; whatever chunk this is, the
			// coordinator needs the verdict again.
			return cached.ack
		}
		// Same transfer ID, different coordinator incarnation: a restarted
		// coordinator reusing tid 1 for NEW bytes. The cached verdict says
		// nothing about this transfer — forget it and reassemble for real.
		a.forgetAck(f.ID)
	}
	idx, _ := f.ChunkInfo()
	sealed, mode, done, err := a.reasm.Add(f)
	if err != nil {
		return a.finishTransfer(f.ID, idx, nonce, airproto.AckRejected, 0)
	}
	if !done {
		return airproto.EpochAck(f.ID, idx, airproto.AckChunk, 0, 0, nonce)
	}
	if a.apply == nil {
		return a.finishTransfer(f.ID, idx, nonce, airproto.AckRejected, 0)
	}
	agreement, err := a.apply(sealed, mode, f.ID)
	if err != nil {
		return a.finishTransfer(f.ID, idx, nonce, airproto.AckRejected, agreement)
	}
	a.fleetVer.Store(uint64(nonce)<<32 | uint64(f.ID))
	return a.finishTransfer(f.ID, idx, nonce, airproto.AckApplied, agreement)
}

// finishTransfer builds the completing ack for a transfer under coordinator
// incarnation nonce, caching it only when the transfer applied — rejections
// are transient (possibly corruption-born) and must not poison retries.
// Callers hold mu.
func (a *Agent) finishTransfer(tid uint32, idx int, nonce uint32, code uint8, agreement float64) *airproto.Frame {
	ack := airproto.EpochAck(tid, idx, code, agreement, a.FleetSeq(), nonce)
	if code != airproto.AckApplied {
		a.forgetAck(tid)
		return ack
	}
	if len(a.ackOrder) >= ackCacheSize {
		delete(a.acks, a.ackOrder[0])
		a.ackOrder = a.ackOrder[1:]
	}
	a.acks[tid] = cachedAck{nonce: nonce, ack: ack}
	a.ackOrder = append(a.ackOrder, tid)
	return ack
}

// forgetAck drops one cached verdict. Callers hold mu.
func (a *Agent) forgetAck(tid uint32) {
	delete(a.acks, tid)
	for i, id := range a.ackOrder {
		if id == tid {
			a.ackOrder = append(a.ackOrder[:i], a.ackOrder[i+1:]...)
			break
		}
	}
}
