GO ?= go

.PHONY: build test race vet fuzz faultgate check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# fuzz smokes the wire-protocol decoder for 10s beyond its seeded corpus.
fuzz:
	$(GO) test -fuzz=FuzzUnmarshal -fuzztime=10s -run='^$$' ./internal/airproto

# faultgate runs a tiny abl-faults sweep; the runner errors out (non-zero
# exit) if the zero-fault-rate point is not bit-identical to the unfaulted
# baseline.
faultgate:
	$(GO) run ./cmd/metaai-bench -exp abl-faults -evalcap 40

# obsgate asserts observability determinism: two seeded serve-path runs
# must produce bit-identical metric fingerprints.
obsgate:
	$(GO) test -run 'TestServeBenchDeterministicFingerprint' ./cmd/metaai-bench

# check is the full gate: vet, plain tests, the race detector over the
# concurrent evaluator, sweeps, and serve paths, the airproto fuzz smoke,
# the abl-faults zero-rate identity gate, and the obs determinism gate.
check: vet test race fuzz faultgate obsgate

# bench runs the Go micro-benchmarks, then the serve-path observability
# benchmark, which snapshots its metrics into BENCH_serve.json. Emit-only:
# no CI threshold reads the file — it exists so regressions show up in
# diffs.
bench:
	$(GO) test -bench=. -benchtime=1x -benchmem ./...
	$(GO) run ./cmd/metaai-bench -servebench 200 -obs-out BENCH_serve.json
