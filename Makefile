GO ?= go

.PHONY: build test race vet fuzz ckptfuzz faultgate recovergate obsgate benchgate tracegate stitchgate cascadegate fleetbench fleetgate chaossoak chaosgate check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# fuzz smokes the wire-protocol decoder for 10s beyond its seeded corpus.
fuzz:
	$(GO) test -fuzz=FuzzUnmarshal -fuzztime=10s -run='^$$' ./internal/airproto

# ckptfuzz smokes the checkpoint decoder for 10s: any input either fails
# with a typed error or decodes to a value that re-encodes byte-identically.
ckptfuzz:
	$(GO) test -fuzz=FuzzDecode -fuzztime=10s -run='^$$' ./internal/checkpoint

# faultgate runs a tiny abl-faults sweep; the runner errors out (non-zero
# exit) if the zero-fault-rate point is not bit-identical to the unfaulted
# baseline.
faultgate:
	$(GO) run ./cmd/metaai-bench -exp abl-faults -evalcap 40

# recovergate is the crash-recovery acceptance gate, under -race: journal a
# served epoch, kill without ceremony, corrupt the newest entry, and recover
# the previous epoch with bit-identical accumulators and zero re-solves.
recovergate:
	$(GO) test -race -count=1 -run 'TestKillAndRecoverBitIdentity|TestRecoverSkipsCorruptEpochs' ./cmd/metaai-serve

# obsgate asserts observability determinism: two seeded serve-path runs
# must produce bit-identical metric fingerprints.
obsgate:
	$(GO) test -run 'TestServeBenchDeterministicFingerprint' ./cmd/metaai-bench

# benchgate wires the p99 regression comparator into CI: unit tests prove it
# trips on real regressions and stays quiet under the relative threshold or
# the absolute µs floor, then one fresh servebench snapshot (sequential,
# batched, and cascade tiers) is self-compared through the CLI path (a
# self-compare must always exit 0; comparing two live runs would flake on
# loaded CI machines, which is exactly the noise the floor exists to reject
# when a human runs -compare old vs new). The zero-alloc steady-state tests
# are the alloc-regression half of the gate: any allocation creeping into
# the batched serving hot path fails them deterministically, without
# depending on wall-clock benchmark numbers.
benchgate:
	$(GO) test -run 'TestCompare' ./cmd/metaai-bench
	$(GO) test -count=1 -run 'TestAccumulateSteadyStateZeroAlloc' ./internal/ota
	$(GO) test -count=1 -run 'TestWorkerBatchSteadyStateZeroAlloc' ./cmd/metaai-serve
	$(GO) run ./cmd/metaai-bench -servebench 100 -obs-out .benchgate.json
	$(GO) run ./cmd/metaai-bench -compare .benchgate.json .benchgate.json
	rm -f .benchgate.json

# tracegate asserts trace determinism: a fixed-seed traced pipeline run
# (train -> schedule solve -> deploy -> 4 inferences, sample=1) must produce
# byte-identical NORMALIZED trace exports across two process runs — trace
# and span IDs derive from seeds and ordinals, never from wall clocks or rng
# draws, and normalization strips the timestamps.
tracegate:
	$(GO) run ./cmd/metaai-bench -tracedump .tracegate.a.json
	$(GO) run ./cmd/metaai-bench -tracedump .tracegate.b.json
	cmp .tracegate.a.json .tracegate.b.json
	rm -f .tracegate.a.json .tracegate.b.json

# stitchgate is tracegate's fleet-wide counterpart, under -race: a client
# request hedged across two replicas through a real router must stitch into
# ONE normalized Chrome-JSON document at the router (root + both hops, the
# loser cancelled, each replica's serve.request parented under its hop),
# byte-identical across fetches — and the router's KindStats/KindTrace
# control plane must keep answering through packet chaos while the data
# plane is saturated past the inflight cap.
stitchgate:
	$(GO) test -race -count=1 -run 'TestFleetStitchedTraceEndToEnd|TestRouterControlPlaneSurvivesChaosAndSaturation' ./cmd/metaai-serve

# cascadegate is the stacked-cascade compatibility gate: a K=1 deployment
# must stay provably bit-identical to the classic single-surface path
# (solver and deployment level), single-surface checkpoints must keep
# sealing at format version 1 byte-compatible with every pre-cascade build
# while cascade state round-trips bit-identically at version 2, and a
# journaled cascade epoch must recover bit-identically across a kill.
cascadegate:
	$(GO) test -count=1 -run 'TestCascadeK1BitIdentity' ./internal/mts ./internal/ota
	$(GO) test -count=1 -run 'TestCascadeStateSealsVersion2|TestCascadeDeploymentRoundtripBitIdentity|TestJournalRecoverSkipsCorruptCascade' ./internal/checkpoint
	$(GO) test -count=1 -run 'TestKillAndRecoverCascadeBitIdentity' ./cmd/metaai-serve

# fleetbench is the fleet acceptance bench, under -race: three replicas
# behind the router take sustained client load through a fleet-wide epoch
# replication, a canary-rejected sabotage with fleet-wide rollback, a
# replica kill mid-publish with hedged failover, and a cold replacement
# caught up by anti-entropy — asserting zero request loss and convergence
# on the latest valid epoch throughout.
fleetbench:
	$(GO) test -race -count=1 -run 'TestFleetBench' -v ./cmd/metaai-serve

# fleetgate is the CI smoke of the same episode (-short trims the load) —
# every failure mode still fires, in about two seconds.
fleetgate:
	$(GO) test -race -count=1 -run 'TestFleetBench' -short ./cmd/metaai-serve

# chaossoak is the full bad-network acceptance soak, under -race: three
# chaos-wrapped replicas and a chaos-wrapped router take sustained
# deadline-stamped client load through 10% drop/dup/delay/corrupt on every
# link, an epoch replication pushed through the fault load, a transient
# one-way partition, and a coordinator kill/restart that rejoins from its
# journaled pubSeq + membership — asserting zero accepted-request loss,
# fleet convergence on the latest valid epoch, and a ≥90% goodput floor.
chaossoak:
	$(GO) test -race -count=1 -run 'TestChaosGate' -v ./cmd/metaai-serve

# chaosgate is the CI smoke of the same episode (-short trims the load),
# plus the netchaos zero-rate identity gate: a chaos layer with all rates
# zero must hand every packet through byte-identical, consuming no
# randomness — mirroring the faults-layer zero-rate gate.
chaosgate:
	$(GO) test -count=1 -run 'TestZeroRateBitIdentity|TestZeroRateLanePassthrough' ./internal/netchaos
	$(GO) test -race -count=1 -run 'TestChaosGate' -short ./cmd/metaai-serve

# check is the full gate: vet, plain tests, the race detector over the
# concurrent evaluator, sweeps, and serve paths, the airproto and checkpoint
# fuzz smokes, the abl-faults zero-rate identity gate, the crash-recovery
# gate, the cascade K=1 compatibility gate, the fleet failover/replication
# smoke, the bad-network chaos soak smoke, and the obs/bench/trace/stitch
# determinism gates.
check: vet test race fuzz ckptfuzz faultgate recovergate cascadegate fleetgate chaosgate obsgate benchgate tracegate stitchgate

# bench runs the Go micro-benchmarks, then the serve-path observability
# benchmark, which snapshots its metrics into BENCH_serve.json. Emit-only:
# no CI threshold reads the file — it exists so regressions show up in
# diffs. 2000 inferences keep the µs-per-inference tiers out of the
# warmup-noise regime (at 200, total wall time is ~1 ms and page faults
# dominate).
bench:
	$(GO) test -bench=. -benchtime=1x -benchmem ./...
	$(GO) run ./cmd/metaai-bench -servebench 2000 -obs-out BENCH_serve.json
