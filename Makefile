GO ?= go

.PHONY: build test race vet check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the full gate: vet, plain tests, and the race detector over the
# concurrent evaluator, sweeps, and serve paths.
check: vet test race

bench:
	$(GO) test -bench=. -benchtime=1x -benchmem ./...
