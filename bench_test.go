// Benchmarks regenerating every table and figure of the paper (one
// benchmark per artifact, per DESIGN.md's experiment index) plus the
// ablation benches for the design choices DESIGN.md calls out.
//
// Each iteration regenerates the artifact end to end — dataset synthesis,
// training, metasurface schedule solving, and over-the-air evaluation — so
// ns/op measures the full reproduction cost. Run a single pass with:
//
//	go test -bench=. -benchtime=1x -benchmem
package metaai_test

import (
	"runtime"
	"sync"
	"testing"

	metaai "repro"

	"repro/internal/cplx"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/ota"
	"repro/internal/rng"
)

// benchExperiment runs one experiment per iteration at Quick scale with a
// reduced evaluation cap so the full suite stays tractable.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewCtx(dataset.Quick, 1)
		ctx.EvalCap = 120
		res, err := experiments.Run(id, ctx)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

func BenchmarkFig6WeightDistribution(b *testing.B) { benchExperiment(b, "fig6") }
func BenchmarkFig7AtomsSweep(b *testing.B)         { benchExperiment(b, "fig7") }
func BenchmarkTable1Overall(b *testing.B)          { benchExperiment(b, "table1") }
func BenchmarkFig12SyncErrorCDF(b *testing.B)      { benchExperiment(b, "fig12") }
func BenchmarkFig13CDFA(b *testing.B)              { benchExperiment(b, "fig13") }
func BenchmarkFig16SyncScheme(b *testing.B)        { benchExperiment(b, "fig16") }
func BenchmarkFig17Multipath(b *testing.B)         { benchExperiment(b, "fig17") }
func BenchmarkFig18Parallelism(b *testing.B)       { benchExperiment(b, "fig18") }
func BenchmarkFig19Noise(b *testing.B)             { benchExperiment(b, "fig19") }
func BenchmarkFig20MultiSensor(b *testing.B)       { benchExperiment(b, "fig20") }
func BenchmarkFig21NLoS(b *testing.B)              { benchExperiment(b, "fig21") }
func BenchmarkFig22Bands(b *testing.B)             { benchExperiment(b, "fig22") }
func BenchmarkFig23Modulation(b *testing.B)        { benchExperiment(b, "fig23") }
func BenchmarkFig24TxDistance(b *testing.B)        { benchExperiment(b, "fig24") }
func BenchmarkFig25TxAngle(b *testing.B)           { benchExperiment(b, "fig25") }
func BenchmarkFig26Interference(b *testing.B)      { benchExperiment(b, "fig26") }
func BenchmarkFig27CrossRoom(b *testing.B)         { benchExperiment(b, "fig27") }
func BenchmarkFig28FaceCase(b *testing.B)          { benchExperiment(b, "fig28") }
func BenchmarkFig29PNNLayers(b *testing.B)         { benchExperiment(b, "fig29") }
func BenchmarkFig30WDD(b *testing.B)               { benchExperiment(b, "fig30") }
func BenchmarkFig31ParallelSweep(b *testing.B)     { benchExperiment(b, "fig31") }
func BenchmarkTable2EnergyMNIST(b *testing.B)      { benchExperiment(b, "table2") }
func BenchmarkTable3EnergyAFHQ(b *testing.B)       { benchExperiment(b, "table3") }

// benchPipe deploys one MNIST pipeline, shared across the evaluator benches
// so serial and parallel runs measure the same deployment.
var benchPipe = struct {
	once sync.Once
	pipe *metaai.Pipeline
	err  error
}{}

func evalPipeline(b *testing.B) *metaai.Pipeline {
	b.Helper()
	benchPipe.once.Do(func() {
		benchPipe.pipe, benchPipe.err = metaai.Run(metaai.DefaultConfig("mnist"))
	})
	if benchPipe.err != nil {
		b.Fatal(benchPipe.err)
	}
	return benchPipe.pipe
}

// BenchmarkEvaluateSerial / BenchmarkEvaluateParallel measure one full
// over-the-air evaluation of the test set through the bound session versus
// GOMAXPROCS per-worker sessions of the same deployment. On a multi-core
// host the parallel variant should scale near-linearly; on one core the
// pair still documents the sharding overhead.
func BenchmarkEvaluateSerial(b *testing.B) {
	pipe := evalPipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if acc := pipe.AirAccuracy(); acc == 0 {
			b.Fatal("degenerate accuracy")
		}
	}
}

func BenchmarkEvaluateParallel(b *testing.B) {
	pipe := evalPipeline(b)
	workers := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if acc := pipe.AirAccuracyParallel(workers); acc == 0 {
			b.Fatal("degenerate accuracy")
		}
	}
}

// cascadeBenchWeights is a fixed 8-class, 32-symbol weight matrix shared by
// the cascade benches.
func cascadeBenchWeights() *cplx.Mat {
	w := cplx.NewMat(8, 32)
	src := rng.New(0xbe9c)
	for i := range w.Data {
		w.Data[i] = complex(src.Normal(0, 1), src.Normal(0, 1))
	}
	return w
}

func cascadeBenchOptions(k int, src *rng.Source) ota.Options {
	opts := ota.NewOptions(src.Split())
	if k > 1 {
		opts.Stack = ota.DefaultStack(k-1, src.Split())
		opts.HopNoise = ota.DefaultHopNoise
	}
	return opts
}

// benchCascadeSolve measures the joint layer-wise schedule solve for a
// K-layer stacked deployment (K=1 is the classic single-surface solve — the
// baseline the cascade refactor must not regress).
func benchCascadeSolve(b *testing.B, k int) {
	w := cascadeBenchWeights()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := rng.New(1)
		d, err := ota.NewDeployment(w, cascadeBenchOptions(k, src), src)
		if err != nil {
			b.Fatal(err)
		}
		if d.Layers() != k {
			b.Fatalf("deployed %d layers, want %d", d.Layers(), k)
		}
	}
}

func BenchmarkCascadeSolveK1(b *testing.B) { benchCascadeSolve(b, 1) }
func BenchmarkCascadeSolveK2(b *testing.B) { benchCascadeSolve(b, 2) }
func BenchmarkCascadeSolveK3(b *testing.B) { benchCascadeSolve(b, 3) }

// benchCascadeInfer measures one over-the-air inference (all per-class
// accumulations) through a deployed K-layer cascade.
func benchCascadeInfer(b *testing.B, k int) {
	src := rng.New(1)
	d, err := ota.NewDeployment(cascadeBenchWeights(), cascadeBenchOptions(k, src), src)
	if err != nil {
		b.Fatal(err)
	}
	sess := d.SessionFromSeed(7)
	x := make([]complex128, d.InputLen())
	in := rng.New(9)
	for i := range x {
		x[i] = cplx.Expi(in.Phase())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if logits := sess.Logits(x); len(logits) != 8 {
			b.Fatal("degenerate logits")
		}
	}
}

func BenchmarkCascadeInferK1(b *testing.B) { benchCascadeInfer(b, 1) }
func BenchmarkCascadeInferK2(b *testing.B) { benchCascadeInfer(b, 2) }
func BenchmarkCascadeInferK3(b *testing.B) { benchCascadeInfer(b, 3) }

// Ablation benches (DESIGN.md "design choices called out for ablation").
func BenchmarkAblationQuantizeStrategy(b *testing.B)     { benchExperiment(b, "abl-quantize") }
func BenchmarkAblationSolverRefinement(b *testing.B)     { benchExperiment(b, "abl-solver") }
func BenchmarkAblationSubSamples(b *testing.B)           { benchExperiment(b, "abl-subsamples") }
func BenchmarkAblationInjectorDistribution(b *testing.B) { benchExperiment(b, "abl-injector") }
