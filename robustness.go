package metaai

import (
	"repro/internal/faults"
	"repro/internal/mobility"
	"repro/internal/rng"
)

// FaultRates configures MetaAI's discrete fault repertoire: stuck meta-atoms,
// shift-register row glitches, symbol erasures, interference bursts, and
// transient K-factor collapses. The zero value injects nothing — and is
// guaranteed bit-identical to an unfaulted session.
type FaultRates = faults.Rates

// FaultInjector wraps an immutable Deployment with a deterministic fault load
// and the masked-atom self-healing re-solve; see DESIGN.md "Fault model &
// degraded mode".
type FaultInjector = faults.Injector

// HealthMonitor is the label-free degradation detector the serving stack
// polls: workers record decision margins, a supervisor asks Degraded.
type HealthMonitor = mobility.Monitor

// FaultMix returns the canonical mixed fault load at severity rate ∈ [0, 1] —
// the mix behind metaai-serve's -fault-rate flag and the abl-faults
// experiment. Stuck atoms dominate; dynamic faults ride along proportionally.
func FaultMix(rate float64) FaultRates { return faults.Mix(rate) }

// NewFaultInjector arms a trained pipeline's deployment with the given fault
// load, deterministically from seed. Derive damaged sessions with
// Injector.Session/Sessions, diagnose with StuckAtoms/ResidualError, and
// recover with Heal, which re-solves the schedule around the stuck atoms and
// returns a fresh Deployment to swap in.
func NewFaultInjector(p *Pipeline, rates FaultRates, seed uint64) (*FaultInjector, error) {
	return faults.New(p.Deployment(), rates, rng.New(seed))
}

// NewHealthMonitor calibrates a degradation monitor against the pipeline's
// current over-the-air behaviour: it measures the mean decision margin over
// probes test samples and trips when a window-sized mean falls below frac of
// it.
func NewHealthMonitor(p *Pipeline, probes int, frac float64, window int) *HealthMonitor {
	x := p.Test.X
	if probes > 0 && probes < len(x) {
		x = x[:probes]
	}
	return mobility.CalibrateMonitor(p.System, x, frac, window)
}
