package metaai_test

import (
	"fmt"

	metaai "repro"
)

// ExampleRun shows the minimal end-to-end pipeline: train the complex LNN
// on a Table 1 task, solve the metasurface schedules, and compare the
// digital "simulation" accuracy with the deployed "prototype" accuracy.
func ExampleRun() {
	cfg := metaai.DefaultConfig("afhq")
	cfg.Train.Epochs = 15
	pipe, err := metaai.Run(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("simulation above 70%:", pipe.SimAccuracy() > 0.70)
	fmt.Println("prototype within 8 points:", pipe.SimAccuracy()-pipe.AirAccuracy() < 0.08)
	fmt.Println("transmissions per inference:", pipe.System.TransmissionsPerInference())
	// Output:
	// simulation above 70%: true
	// prototype within 8 points: true
	// transmissions per inference: 3
}

// ExampleExperiments lists the first reproducible paper artifacts.
func ExampleExperiments() {
	ids := metaai.Experiments()
	fmt.Println(ids[0], ids[1], ids[2])
	// Output: fig6 fig7 table1
}

// ExampleRunExperiment regenerates the Appendix A.4 energy table and shows
// that MetaAI holds the lowest total energy row.
func ExampleRunExperiment() {
	res, err := metaai.RunExperiment("table2", metaai.QuickScale, 1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	last := res.Rows[len(res.Rows)-1]
	fmt.Println(last[0], last[1])
	// Output: Meta-AI LNN
}

// ExampleDeployParallel computes all classes in one transmission via the
// antenna scheme (Eqn 10 of the paper).
func ExampleDeployParallel() {
	cfg := metaai.DefaultConfig("afhq")
	cfg.Train.Epochs = 15
	cfg.Sync = metaai.SyncPerfect
	pipe, err := metaai.Run(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sys, err := metaai.DeployParallel(pipe, metaai.Antenna, 3)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("transmissions:", sys.Transmissions())
	// Output: transmissions: 1
}
