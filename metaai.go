// Package metaai is a from-scratch Go reproduction of "Enabling Over-the-Air
// AI for Edge Computing via Metasurface-Driven Physical Neural Networks"
// (SIGCOMM 2025): a wireless computing paradigm in which a programmable
// metasurface shapes the channel so that transmitting a sensor's data *is*
// running a neural network — the receiver accumulates
//
//	y_r = | Σ_i H_r(t_i) · x_i |
//
// and reads out the classification directly.
//
// The package is a thin facade over the implementation packages:
//
//   - training: complex-valued LNN with Wirtinger-calculus backprop
//     (internal/nn, internal/autodiff)
//   - deployment: discrete 2-bit metasurface configuration solving
//     (internal/mts, internal/ota)
//   - physics: channels, modulation, clock sync, noise (internal/channel,
//     internal/modem, internal/clocksync, internal/noisetrain)
//   - extensions: subcarrier/antenna parallelism, multi-sensor fusion
//     (internal/parallel, internal/fusion)
//   - evaluation: one regenerator per paper table/figure
//     (internal/experiments)
//
// Quickstart:
//
//	pipe, err := metaai.Run(metaai.DefaultConfig("mnist"))
//	if err != nil { ... }
//	fmt.Println(pipe.SimAccuracy(), pipe.AirAccuracy())
//	class, probs := pipe.Infer(sample)
//
// Reproduce a paper artifact:
//
//	res, err := metaai.RunExperiment("table1", metaai.QuickScale, 1)
//	res.Fprint(os.Stdout)
package metaai

import (
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/experiments"
	"repro/internal/modem"
	"repro/internal/nn"
	"repro/internal/ota"
)

// Config assembles one end-to-end MetaAI run; see core.Config for the full
// field documentation.
type Config = core.Config

// Pipeline is a trained and deployed MetaAI system.
type Pipeline = core.Pipeline

// Model is the digitally trained complex-valued linear network — the
// artifact metaai-train -save checkpoints and Resume redeploys.
type Model = nn.ComplexLNN

// Deployment is the immutable over-the-air deployment — solved metasurface
// schedules plus channel statistics. Any number of goroutines may share one
// Deployment; see DESIGN.md "Deployment vs Session".
type Deployment = ota.Deployment

// Session is a per-worker inference context over a shared Deployment. Each
// session owns a private random stream and is strictly single-goroutine;
// derive one per worker with Pipeline.Sessions(n).
type Session = ota.Session

// SyncMode selects the clock-synchronization scheme (§3.5.1 of the paper).
type SyncMode = core.SyncMode

// Synchronization modes, from idealized to the paper's full CDFA scheme.
const (
	SyncPerfect = core.SyncPerfect
	SyncNone    = core.SyncNone
	SyncCoarse  = core.SyncCoarse
	SyncCDFA    = core.SyncCDFA
)

// Scheme is a digital modulation scheme; the choice fixes the network's
// input length U.
type Scheme = modem.Scheme

// Supported modulation schemes (Fig 23 of the paper).
const (
	BPSK   = modem.BPSK
	QPSK   = modem.QPSK
	QAM16  = modem.QAM16
	QAM64  = modem.QAM64
	QAM256 = modem.QAM256
)

// Scale selects dataset sizes.
type Scale = dataset.Scale

// Dataset scales: QuickScale keeps runs laptop-fast, FullScale approaches
// the paper's sample counts.
const (
	QuickScale = dataset.Quick
	FullScale  = dataset.Full
)

// DefaultConfig returns the paper's §4 default setup for one of the Table 1
// datasets (Datasets() lists them): 256-QAM encoding, office environment,
// 16×16 2-bit metasurface at 5.25 GHz, CDFA synchronization.
func DefaultConfig(datasetName string) Config {
	return core.DefaultConfig(datasetName)
}

// Run trains the digital model, solves the metasurface schedules, and
// returns the deployed pipeline.
func Run(cfg Config) (*Pipeline, error) {
	return core.New(cfg)
}

// Resume deploys an already-trained model — typically restored from a
// checkpoint written by metaai-train -save — skipping the digital training
// pass. The deployment half matches Run exactly, so a resumed pipeline
// reproduces the one that saved the model.
func Resume(cfg Config, model *nn.ComplexLNN) (*Pipeline, error) {
	return core.NewResumed(cfg, model)
}

// Datasets lists the six Table 1 classification tasks.
func Datasets() []string { return dataset.Names() }

// MultiSensorDatasets lists the three Fig 20 fusion tasks.
func MultiSensorDatasets() []string { return dataset.MultiNames() }

// ExperimentResult is one regenerated paper table/figure.
type ExperimentResult = experiments.Result

// Experiments lists every reproducible paper artifact id, in paper order.
func Experiments() []string { return experiments.IDs() }

// RunExperiment regenerates one paper artifact at the given scale and seed.
func RunExperiment(id string, scale Scale, seed uint64) (*ExperimentResult, error) {
	return experiments.Run(id, experiments.NewCtx(scale, seed))
}

// RunExperimentLogged is RunExperiment with progress lines written to log.
func RunExperimentLogged(id string, scale Scale, seed uint64, log io.Writer) (*ExperimentResult, error) {
	ctx := experiments.NewCtx(scale, seed)
	ctx.Log = log
	return experiments.Run(id, ctx)
}
