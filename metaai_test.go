package metaai_test

import (
	"strings"
	"testing"

	metaai "repro"
)

func TestDatasetsListed(t *testing.T) {
	ds := metaai.Datasets()
	if len(ds) != 6 {
		t.Fatalf("got %d datasets, want the 6 Table 1 tasks", len(ds))
	}
	ms := metaai.MultiSensorDatasets()
	if len(ms) != 3 {
		t.Fatalf("got %d multi-sensor datasets, want 3", len(ms))
	}
}

func TestExperimentsRegistered(t *testing.T) {
	ids := metaai.Experiments()
	want := []string{
		"fig6", "fig7", "table1", "fig12", "fig13", "fig16", "fig17",
		"fig18", "fig19", "fig20", "fig21", "fig22", "fig23", "fig24",
		"fig25", "fig26", "fig27", "fig28", "fig29", "fig30", "fig31",
		"table2", "table3",
		"ext-compensation", "ext-mobility", "ext-deepmodel", "ext-feedback",
		"fig-cascade",
		"abl-quantize", "abl-solver", "abl-subsamples", "abl-injector", "abl-jitter", "abl-faults", "ext-perclass",
	}
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(ids) != len(want) {
		t.Errorf("registered %d experiments, expected %d", len(ids), len(want))
	}
}

func TestRunEndToEndFacade(t *testing.T) {
	cfg := metaai.DefaultConfig("afhq")
	cfg.Train.Epochs = 15
	pipe, err := metaai.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if pipe.SimAccuracy() < 0.6 || pipe.AirAccuracy() < 0.55 {
		t.Fatalf("facade pipeline accuracy sim=%.3f air=%.3f", pipe.SimAccuracy(), pipe.AirAccuracy())
	}
}

func TestRunExperimentFacade(t *testing.T) {
	res, err := metaai.RunExperiment("table2", metaai.QuickScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	res.Fprint(&sb)
	out := sb.String()
	for _, want := range []string{"table2", "Meta-AI", "ResNet-18", "total_mJ"} {
		if !strings.Contains(out, want) {
			t.Errorf("experiment output missing %q:\n%s", want, out)
		}
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	if _, err := metaai.RunExperiment("nope", metaai.QuickScale, 1); err == nil {
		t.Fatal("expected error for unknown experiment id")
	}
}

func TestFusionFacade(t *testing.T) {
	pipe, err := metaai.RunFused("uschad", 2, metaai.QuickScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	single, err := metaai.RunFused("uschad", 1, metaai.QuickScale, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pipe.SimAccuracy() <= single.SimAccuracy() {
		t.Fatalf("fusing both USC-HAD modalities (%.3f) should beat one (%.3f)",
			pipe.SimAccuracy(), single.SimAccuracy())
	}
	if _, err := metaai.RunFused("uschad", 5, metaai.QuickScale, 1); err == nil {
		t.Fatal("expected error for too many sensors")
	}
}

func TestParallelFacade(t *testing.T) {
	cfg := metaai.DefaultConfig("afhq")
	cfg.Train.Epochs = 15
	cfg.Sync = metaai.SyncPerfect
	pipe, err := metaai.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := metaai.DeployParallel(pipe, metaai.Antenna, 3)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Transmissions() != 1 {
		t.Fatalf("3 antennas for 3 classes should need 1 transmission, got %d", sys.Transmissions())
	}
	if acc := metaai.EvaluateParallel(pipe, sys); acc < 0.5 {
		t.Fatalf("parallel accuracy %.3f", acc)
	}
	if _, err := metaai.DeployParallel(pipe, metaai.ParallelKind("bogus"), 2); err == nil {
		t.Fatal("expected error for unknown parallel kind")
	}
}

func TestRobustnessFacade(t *testing.T) {
	cfg := metaai.DefaultConfig("afhq")
	cfg.Train.Epochs = 15
	pipe, err := metaai.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !metaai.FaultMix(0).Zero() {
		t.Fatal("FaultMix(0) must be the zero fault load")
	}
	inj, err := metaai.NewFaultInjector(pipe, metaai.FaultMix(0.6), 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(inj.StuckAtoms()) == 0 {
		t.Fatal("FaultMix(0.6) stuck no atoms")
	}
	broken := inj.ResidualError()
	if _, err := inj.Heal(); err != nil {
		t.Fatal(err)
	}
	if !inj.Healed() || inj.ResidualError() >= broken {
		t.Fatalf("heal did not reduce residual error: %.4f -> %.4f", broken, inj.ResidualError())
	}

	mon := metaai.NewHealthMonitor(pipe, 32, 0.5, 8)
	if mon.Degraded() {
		t.Fatal("freshly calibrated monitor already degraded")
	}
	for i := 0; i < 8; i++ {
		mon.ObserveMargin(0)
	}
	if !mon.Degraded() {
		t.Fatal("a window of zero margins must trip the monitor")
	}
}

func TestFaceCaseFacade(t *testing.T) {
	pipe, fc, err := metaai.RunFaceCase(1)
	if err != nil {
		t.Fatal(err)
	}
	if fc.Classes != 10 || len(fc.Test) != 200 {
		t.Fatalf("face case shape: %d classes, %d test", fc.Classes, len(fc.Test))
	}
	if acc := pipe.AirAccuracy(); acc < 0.55 {
		t.Fatalf("face case air accuracy %.3f; paper reports 78.54%%", acc)
	}
}
