// Command metaai-train trains a MetaAI pipeline for one dataset, solves the
// metasurface schedules, and writes the deployment artifacts (trained
// complex weights, realized responses, and per-symbol 2-bit configurations)
// as JSON — the file an MTS controller would stream to its shift registers.
//
// -save checkpoints the trained model (sealed, CRC-checksummed binary via
// internal/checkpoint); -resume restores it and skips the training pass
// entirely, going straight to schedule solving — the deployment half is
// identical, so a resumed run reproduces the saved run's pipeline.
//
// Usage:
//
//	metaai-train -dataset mnist -out deploy.json
//	metaai-train -dataset widar3 -scheme qpsk -epochs 60 -scale full
//	metaai-train -dataset mnist -save model.ckpt
//	metaai-train -dataset mnist -resume model.ckpt -out deploy.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	metaai "repro"

	"repro/internal/checkpoint"
	"repro/internal/modem"
)

func main() {
	var (
		ds     = flag.String("dataset", "mnist", "dataset: "+strings.Join(metaai.Datasets(), ", "))
		scheme = flag.String("scheme", "qam256", "modulation: bpsk, qpsk, qam16, qam64, qam256")
		epochs = flag.Int("epochs", 0, "training epochs (0 = paper default)")
		scale  = flag.String("scale", "quick", "dataset scale: quick or full")
		seed   = flag.Uint64("seed", 1, "random seed")
		layers = flag.Int("layers", 1, "stacked metasurface layers (1 = classic single surface)")
		out    = flag.String("out", "", "output JSON path (default: stdout summary only)")
		save   = flag.String("save", "", "checkpoint the trained model to this path")
		resume = flag.String("resume", "", "restore a trained model from this checkpoint and skip training")
	)
	flag.Parse()

	schemes := map[string]modem.Scheme{
		"bpsk": modem.BPSK, "qpsk": modem.QPSK,
		"qam16": modem.QAM16, "qam64": modem.QAM64, "qam256": modem.QAM256,
	}
	sch, ok := schemes[strings.ToLower(*scheme)]
	if !ok {
		fmt.Fprintf(os.Stderr, "metaai-train: unknown scheme %q\n", *scheme)
		os.Exit(2)
	}
	cfg := metaai.DefaultConfig(*ds)
	cfg.Scheme = sch
	cfg.Seed = *seed
	cfg.Train.Epochs = *epochs
	cfg.Layers = *layers
	if *scale == "full" {
		cfg.Scale = metaai.FullScale
	}

	var pipe *metaai.Pipeline
	var err error
	if *resume != "" {
		blob, rerr := checkpoint.ReadFile(*resume)
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "metaai-train: resume: %v\n", rerr)
			os.Exit(1)
		}
		model, rerr := checkpoint.DecodeModel(blob)
		if rerr != nil {
			fmt.Fprintf(os.Stderr, "metaai-train: resume %s: %v\n", *resume, rerr)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "resuming %s (%s) from %s (%d classes, U=%d) and solving schedules...\n",
			*ds, sch, *resume, model.Classes, model.U)
		pipe, err = metaai.Resume(cfg, model)
	} else {
		fmt.Fprintf(os.Stderr, "training %s (%s) and solving schedules...\n", *ds, sch)
		pipe, err = metaai.Run(cfg)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "metaai-train: %v\n", err)
		os.Exit(1)
	}
	if *save != "" {
		if err := checkpoint.WriteFile(*save, checkpoint.EncodeModel(pipe.Model)); err != nil {
			fmt.Fprintf(os.Stderr, "metaai-train: save: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("saved trained model checkpoint to %s\n", *save)
	}
	fmt.Printf("dataset=%s scheme=%s classes=%d U=%d\n", *ds, sch, pipe.Train.Classes, pipe.Train.U)
	fmt.Printf("simulation accuracy: %.2f%%\n", 100*pipe.SimAccuracy())
	fmt.Printf("prototype accuracy:  %.2f%%\n", 100*pipe.AirAccuracy())
	fmt.Printf("estimated Rx angle:  %.1f deg, schedule: %d configs of %d atoms\n",
		pipe.System.EstRxAngleDeg, pipe.Train.Classes*pipe.Train.U, len(pipe.System.Schedule[0][0]))
	if n := pipe.Deployment().Layers(); n > 1 {
		fmt.Printf("stacked cascade:     %d layers, hop noise %.3f\n", n, pipe.Deployment().Options().HopNoise)
	}

	if *out == "" {
		return
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metaai-train: %v\n", err)
		os.Exit(1)
	}
	defer f.Close()
	art := pipe.BuildArtifact()
	if err := art.WriteJSON(f); err != nil {
		fmt.Fprintf(os.Stderr, "metaai-train: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote deployment artifact to %s\n", *out)
}
