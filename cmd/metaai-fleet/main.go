// Command metaai-fleet fronts a replicated metaai-serve fleet: one UDP
// address clients talk to, consistent-hash routing with failover and hedged
// retries across the replicas, heartbeat-driven failure detection, and
// chunked epoch replication with a fleet-wide canary gate.
//
//	metaai-fleet -addr 127.0.0.1:9540 -replicas 127.0.0.1:9530,127.0.0.1:9531
//	metaai-fleet -addr 127.0.0.1:9540 -publish /var/lib/metaai
//
// Replicas can be seeded with -replicas, announce themselves with
// metaai-serve's -join flag, or both. -publish watches a checkpoint journal
// directory (a metaai-serve -state-dir) and replicates every new epoch it
// finds: the first live replica in ring order canaries the epoch and must
// report sufficient held-out prediction agreement before the fan-out; a
// rejection rolls the whole fleet back to the prior epoch so every replica
// converges again. Clients speak plain airproto to -addr exactly as they
// would to a single server — the fleet is invisible.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"syscall"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/fleet"
	"repro/internal/netchaos"
	"repro/internal/obs"
	"repro/internal/obs/events"
	"repro/internal/obs/trace"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:9540", "client-facing UDP listen address")
		replicas   = flag.String("replicas", "", "comma-separated seed replica addresses (replicas can also announce with metaai-serve -join)")
		hbEvery    = flag.Duration("hb-every", 250*time.Millisecond, "heartbeat cadence per replica")
		hbTimeout  = flag.Duration("hb-timeout", 200*time.Millisecond, "heartbeat reply timeout")
		hedge      = flag.Duration("hedge-after", 150*time.Millisecond, "launch the next failover candidate when the current one has not answered within this")
		fwdTimeout = flag.Duration("forward-timeout", 3*time.Second, "end-to-end deadline for one client request through all failover attempts")
		attempts   = flag.Int("max-attempts", 3, "distinct replicas tried per client request")
		inflight   = flag.Int("inflight-per-replica", 64, "router load-shedding cap: at most this many in-flight forwards per live replica")
		canaryFrac = flag.Float64("canary-frac", 0.8, "minimum canary prediction agreement before an epoch fans out fleet-wide")
		publish    = flag.String("publish", "", "watch this checkpoint journal directory and replicate every new epoch fleet-wide")
		pubEvery   = flag.Duration("publish-every", 2*time.Second, "journal polling period for -publish")
		seed       = flag.Uint64("seed", 1, "random seed (probe jitter)")
		stateDir   = flag.String("state-dir", "", "journal the coordinator's publication sequence, membership, and committed epoch here; a restarted router restores them and rejoins without diverging the fleet")
		chaosRate  = flag.Float64("chaos-rate", 0, "wrap the client-facing socket with the seeded netchaos.Mix packet-fault load at this severity in [0,1]")
		chaosSeed  = flag.Uint64("chaos-seed", 1, "seed for -chaos-rate packet fates (same seed, same fates)")
		metrics    = flag.String("metrics-addr", "", "serve fleet metrics and events on this HTTP address")
		traceSamp  = flag.Float64("trace-sample", 0.01, "fraction of fleet.request traces to retain (1 keeps all; needs -metrics-addr)")
	)
	flag.Parse()

	if *metrics != "" {
		obs.SetEnabled(true)
		trace.Default().Enable(256, *traceSamp)
		events.Default().Enable(512, trace.Default())
	}

	cfg := fleet.Config{
		HeartbeatEvery:     *hbEvery,
		HeartbeatTimeout:   *hbTimeout,
		HedgeAfter:         *hedge,
		ForwardTimeout:     *fwdTimeout,
		MaxAttempts:        *attempts,
		InflightPerReplica: *inflight,
		CanaryFrac:         *canaryFrac,
		Seed:               *seed,
		StateDir:           *stateDir,
		Logf:               log.Printf,
	}
	if *replicas != "" {
		for _, a := range strings.Split(*replicas, ",") {
			if a = strings.TrimSpace(a); a != "" {
				cfg.Replicas = append(cfg.Replicas, fleet.Replica{Addr: a})
			}
		}
	}
	router, err := fleet.NewRouter(cfg)
	if err != nil {
		log.Fatal(err)
	}

	var sidecar *http.Server
	if *metrics != "" {
		sidecar = &http.Server{Addr: *metrics, Handler: fleetMux(router)}
		go func() {
			log.Printf("fleet sidecar on http://%s (metrics, fleet metrics, events)", *metrics)
			if err := sidecar.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("fleet sidecar: %v", err)
			}
		}()
	}

	udpAddr, err := net.ResolveUDPAddr("udp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	udpFront, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		log.Fatal(err)
	}
	var front netchaos.PacketConn = udpFront
	if *chaosRate > 0 {
		front = netchaos.Wrap(udpFront, netchaos.Config{
			Seed:     *chaosSeed,
			Inbound:  netchaos.Mix(*chaosRate),
			Outbound: netchaos.Mix(*chaosRate),
		})
		log.Printf("chaos armed on the client-facing socket (mix severity %.2f, seed %d)", *chaosRate, *chaosSeed)
	}
	log.Printf("fleet router on %s fronting %d seed replicas (ctrl-c to stop)",
		front.LocalAddr(), len(cfg.Replicas))

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		front.Close() // unblock Serve; the deferred router.Close follows
	}()

	if *publish != "" {
		go publishLoop(ctx, router, *publish, *pubEvery)
	}

	err = router.Serve(front)
	router.Close()
	if sidecar != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		sidecar.Shutdown(sctx)
	}
	if ctx.Err() != nil {
		log.Printf("fleet router shut down")
		return
	}
	if err != nil {
		log.Fatal(err)
	}
}

// publishLoop polls a checkpoint journal directory and replicates every new
// epoch it finds across the fleet. The journal is metaai-serve's own WAL
// format, so pointing -publish at a running server's -state-dir turns each
// of its published epochs (deploys, heals, rollbacks) into a fleet-wide
// replication — canary-gated, so one server's bad heal cannot poison the
// fleet. Permanent verdicts (fleet.ErrRefused: the canary or a fan-out
// replica rejected the epoch, or it would not decode) skip the epoch — the
// fleet rolled back and the journal moves past it on the next heal.
// Transient failures (no live replicas yet, canary unreachable, ack
// timeouts, mid-fan-out eviction) keep the epoch pending and retry it on
// the next tick, so the fleet still converges on the journal's newest
// valid epoch once the transport recovers.
func publishLoop(ctx context.Context, router *fleet.Router, dir string, every time.Duration) {
	if every <= 0 {
		every = 2 * time.Second
	}
	j, err := checkpoint.OpenJournal(dir)
	if err != nil {
		log.Printf("fleet publish: %v", err)
		return
	}
	log.Printf("replicating epochs from %s every %v", dir, every)
	t := time.NewTicker(every)
	defer t.Stop()
	var last uint64 // newest journal sequence already offered to the fleet
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		ep, err := j.Recover()
		if err != nil {
			if !errors.Is(err, checkpoint.ErrNoEpoch) {
				log.Printf("fleet publish: %v", err)
			}
			continue
		}
		if ep.Seq <= last {
			continue
		}
		if ep.Reason == fleet.ReasonReplicate || ep.Reason == fleet.ReasonRollback {
			// The epoch arrived via fleet replication in the first place: the
			// watched journal belongs to a replica that is itself a fleet
			// member. Re-publishing it would bounce every push back through
			// the coordinator forever; only organic epochs (deploys, heals,
			// local rollbacks) replicate.
			last = ep.Seq
			continue
		}
		if err := router.Publish(checkpoint.EncodeEpoch(ep)); err != nil {
			log.Printf("fleet publish: epoch %d: %v", ep.Seq, err)
			if !errors.Is(err, fleet.ErrRefused) {
				continue // transient: keep the epoch pending and retry next tick
			}
			// Refused epochs are not retried: the fleet rolled back and the
			// journal will move past the bad epoch on the next heal.
		}
		last = ep.Seq
	}
}

// fleetMux is the router's observability sidecar: the router's own obs
// snapshot (fleet.* counters and gauges) in text and JSON, the MERGED
// fleet-wide view (every replica's piggybacked snapshot, bucket-wise
// merged, with per-replica health scores and the fleet SLO burn rates),
// and the event journal.
func fleetMux(router *fleet.Router) *http.ServeMux {
	obs.PublishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := obs.Default().Snapshot().WriteText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := obs.Default().Snapshot().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/fleet/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		merged, per := router.FleetSnapshot()
		if err := merged.WriteText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fast, slow := router.BurnRate()
		fmt.Fprintf(w, "fleet.burn_rate.fast %g\n", fast)
		fmt.Fprintf(w, "fleet.burn_rate.slow %g\n", slow)
		health := router.HealthScores()
		names := make([]string, 0, len(health))
		for name := range health {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fmt.Fprintf(w, "fleet.replica.health{replica=%q} %g\n", name, health[name])
		}
		for _, name := range names {
			if _, ok := per[name]; !ok {
				fmt.Fprintf(w, "# replica %s has not piggybacked a snapshot yet\n", name)
			}
		}
	})
	mux.HandleFunc("/fleet/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		merged, per := router.FleetSnapshot()
		fast, slow := router.BurnRate()
		out := map[string]any{
			"merged":      merged,
			"per_replica": per,
			"burn_fast":   fast,
			"burn_slow":   slow,
			"health":      router.HealthScores(),
		}
		if err := json.NewEncoder(w).Encode(out); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := trace.WriteList(w, trace.Default().List()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace/", func(w http.ResponseWriter, r *http.Request) {
		idHex := strings.TrimPrefix(r.URL.Path, "/trace/")
		id, err := trace.ParseID(idHex)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		tr, flags := trace.Default().Get(id)
		if tr == nil {
			http.Error(w, "trace not retained (sampled out, evicted, or never recorded)", http.StatusNotFound)
			return
		}
		// The router's OWN segment only (fleet.request + hops); probe with
		// -trace <id> against the router to get the stitched document with
		// every replica's serve.request spliced in.
		w.Header().Set("Content-Type", "application/json")
		if err := trace.WriteJSON(w, tr, flags, trace.ExportOptions{}); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := events.Default().WriteNDJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "metaai-fleet sidecar: /metrics /metrics.json /fleet/metrics /fleet/metrics.json /traces /trace/<id> /events")
	})
	return mux
}
