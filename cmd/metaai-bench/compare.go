package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/obs"
)

// benchReport mirrors runServeBench's JSON artifact, so two snapshots can
// be reloaded and diffed. obs.Bucket round-trips its "+Inf" overflow bound,
// which lets Quantile re-derive percentiles from the persisted buckets.
type benchReport struct {
	Bench        string  `json:"bench"`
	Inferences   int     `json:"inferences"`
	Seed         uint64  `json:"seed"`
	WallSeconds  float64 `json:"wall_seconds"`
	MicrosPerInf float64 `json:"micros_per_inference"`
	// MicrosPerInfBatch gates the batched zero-alloc serve path
	// (AccumulateBatch sweeps); zero in artifacts written before batching
	// existed, which check() treats as "no old baseline" rather than a
	// regression.
	MicrosPerInfBatch float64 `json:"micros_per_inference_batch"`
	// MicrosPerInfCas gates the 2-layer cascade hot path; zero in artifacts
	// written before cascades existed, which check() treats as "no old
	// baseline" rather than a regression.
	MicrosPerInfCas float64 `json:"micros_per_inference_cascade2"`
	// FleetP99Micros gates the replayed fleet episode's merged per-replica
	// p99; zero in artifacts written before the fleet observability plane
	// existed (no old baseline, never a regression).
	FleetP99Micros float64 `json:"fleet_p99_micros"`
	// BurnRate is the episode's worst-window SLO error-budget burn —
	// reported for visibility in the compare table, never gated: it is an
	// error-budget ratio, not a latency.
	BurnRate float64       `json:"burn_rate"`
	Metrics  *obs.Snapshot `json:"metrics"`
}

func loadBenchReport(path string) (*benchReport, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r benchReport
	if err := json.Unmarshal(blob, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Metrics == nil {
		return nil, fmt.Errorf("%s: no metrics section", path)
	}
	return &r, nil
}

// compareReports diffs every latency series the two snapshots share — each
// histogram's p99 plus the report-level µs-per-inference — and returns an
// error naming every regression beyond the gate. A series regresses only
// when BOTH conditions hold:
//
//   - relative: new p99 exceeds old p99 by more than threshold (0.10 = 10%)
//   - absolute: the increase also exceeds floorMicros
//
// The absolute floor keeps the gate honest at microsecond scale, where a
// scheduler hiccup can double a 3µs p99 without meaning anything; a real
// regression moves the needle in both relative and absolute terms.
// Improvements and series present on only one side never fail the gate.
func compareReports(oldR, newR *benchReport, threshold, floorMicros float64) error {
	type row struct {
		name      string
		oldUs     float64
		newUs     float64
		regressed bool
	}
	var rows []row
	check := func(name string, oldUs, newUs float64) {
		r := row{name: name, oldUs: oldUs, newUs: newUs}
		if oldUs > 0 {
			rel := (newUs - oldUs) / oldUs
			r.regressed = rel > threshold && newUs-oldUs > floorMicros
		}
		rows = append(rows, r)
	}
	check("micros_per_inference", oldR.MicrosPerInf, newR.MicrosPerInf)
	check("micros_per_inference_batch", oldR.MicrosPerInfBatch, newR.MicrosPerInfBatch)
	check("micros_per_inference_cascade2", oldR.MicrosPerInfCas, newR.MicrosPerInfCas)
	check("fleet_p99_micros", oldR.FleetP99Micros, newR.FleetP99Micros)
	for _, name := range sortedNames(oldR.Metrics.Histograms) {
		oldH := oldR.Metrics.Histograms[name]
		newH, ok := newR.Metrics.Histograms[name]
		if !ok || oldH.Count == 0 || newH.Count == 0 {
			continue
		}
		check(name+" p99", oldH.Quantile(0.99)*1e6, newH.Quantile(0.99)*1e6)
	}

	var failed []string
	for _, r := range rows {
		verdict := "ok"
		if r.regressed {
			verdict = "REGRESSED"
			failed = append(failed, r.name)
		}
		delta := 0.0
		if r.oldUs > 0 {
			delta = 100 * (r.newUs - r.oldUs) / r.oldUs
		}
		fmt.Printf("compare: %-36s old %10.2fµs  new %10.2fµs  %+7.1f%%  %s\n",
			r.name, r.oldUs, r.newUs, delta, verdict)
	}
	// Burn rate is informational: a budget ratio, not a latency — printed so
	// SLO drift shows up in compare output, but never a gating failure.
	if oldR.BurnRate != 0 || newR.BurnRate != 0 {
		fmt.Printf("compare: %-36s old %10.3f    new %10.3f    (informational)\n",
			"burn_rate", oldR.BurnRate, newR.BurnRate)
	}
	if len(failed) > 0 {
		return fmt.Errorf("p99 regression beyond %.0f%% (+%.0fµs floor) in: %v",
			threshold*100, floorMicros, failed)
	}
	return nil
}

// runCompare loads two servebench artifacts and exits non-zero (via the
// returned error) on any gated p99 regression of new relative to old.
func runCompare(oldPath, newPath string, threshold, floorMicros float64) error {
	oldR, err := loadBenchReport(oldPath)
	if err != nil {
		return err
	}
	newR, err := loadBenchReport(newPath)
	if err != nil {
		return err
	}
	return compareReports(oldR, newR, threshold, floorMicros)
}

func sortedNames(m map[string]obs.HistogramSnapshot) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
