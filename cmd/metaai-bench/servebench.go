package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/cplx"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/ota"
	"repro/internal/rng"
)

// serveBatchSize is the sweep width of the batched-inference tier — the
// serve worker's drain ceiling at `-batch 8`.
const serveBatchSize = 8

// serveBenchOut bundles one servebench run: the metric snapshot, the three
// inference-loop wall times, and the flash-crowd loadgen scoreboard.
type serveBenchOut struct {
	snap                   *obs.Snapshot
	single, batch, cascade time.Duration
	loadgen                loadgenResult
	// fleetObs is the replayed fleet episode's observability plane: the
	// merged per-replica snapshot (source of fleet_p99_micros) and the
	// fleet SLO burn rates, all deterministic under the episode seed.
	fleetObs fleet.ReplayObs
}

// serveBenchRun deploys a small random-weight over-the-air system, enables
// observability, and replays n inferences through one session — then the
// same n through the batched zero-alloc path (AccumulateBatch sweeps of
// serveBatchSize, magnitudes via AbsInto scratch, mirroring the serve
// worker's steady state), then the sequential workload through a 2-layer
// stacked cascade, then a replayed fleet episode (routing, failover,
// eviction, replication, canary rollback, catch-up) so the snapshot carries
// the serving hot paths AND the fleet.* series, and finally a virtual-time
// flash-crowd loadgen episode so the loadgen.* overload counters land in
// the fingerprint too. The whole run is a pure function of (n, seed) except
// for wall-clock durations, so the snapshot's Fingerprint (counters,
// gauges, histogram counts) is deterministic — the CI gate asserts exactly
// that.
func serveBenchRun(n int, seed uint64) (serveBenchOut, error) {
	obs.SetEnabled(true)
	obs.Default().Reset()
	src := rng.New(seed)
	w := cplx.NewMat(4, 16)
	wsrc := rng.New(seed ^ 0x7)
	for i := range w.Data {
		w.Data[i] = cplx.Expi(wsrc.Phase()) * complex(0.5+wsrc.Float64(), 0)
	}
	d, err := ota.NewDeployment(w, ota.NewOptions(src.Split()), src)
	if err != nil {
		return serveBenchOut{}, err
	}
	sess := d.NewSession(src.Split())
	x := make([]complex128, d.InputLen())
	for i := range x {
		x[i] = cplx.Expi(src.Phase())
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		sess.Logits(x)
	}
	elapsed := time.Since(start)

	// Batched hot path: n inferences in AccumulateBatch sweeps over reused
	// accumulators and magnitude scratch — what a serve worker does per
	// wakeup under load — on a static-channel epoch (compensated
	// quasi-static environment, no jitter, no sync sampler), where the
	// deployment's cached flat response rows turn the inner loop into a
	// fused multiply-add.
	srcB := rng.New(seed ^ 0xba7c)
	optsB := ota.NewOptions(srcB.Split())
	optsB.SubSamples = 0
	optsB.JitterStd = 0
	optsB.CompensateEnv = true
	db, err := ota.NewDeployment(w, optsB, srcB)
	if err != nil {
		return serveBenchOut{}, err
	}
	sessB := db.NewSession(srcB.Split())
	xs := make([][]complex128, serveBatchSize)
	accs := make([]cplx.Vec, serveBatchSize)
	for i := range xs {
		xs[i] = x
		accs[i] = make(cplx.Vec, db.Classes())
	}
	var mags []float64
	startB := time.Now()
	for done := 0; done < n; done += serveBatchSize {
		sweep := xs
		if rem := n - done; rem < serveBatchSize {
			sweep = xs[:rem]
		}
		out := sessB.AccumulateBatch(sweep, accs)
		for _, acc := range out {
			mags = cplx.AbsInto(mags, acc)
		}
	}
	elapsedB := time.Since(startB)

	// Cascade hot path: the same weights behind a 2-layer stack.
	srcC := rng.New(seed ^ 0xca5c)
	optsC := ota.NewOptions(srcC.Split())
	optsC.Stack = ota.DefaultStack(1, srcC.Split())
	optsC.HopNoise = ota.DefaultHopNoise
	dc, err := ota.NewDeployment(w, optsC, srcC)
	if err != nil {
		return serveBenchOut{}, err
	}
	sessC := dc.NewSession(srcC.Split())
	startC := time.Now()
	for i := 0; i < n; i++ {
		sessC.Logits(x)
	}
	elapsedC := time.Since(startC)

	// Fleet tier: one deterministic replayed episode drives the router's
	// components (ring, detector, chunked replication) through their full
	// failure repertoire, so the fleet.* counters land in the snapshot with
	// reproducible values — and its observability plane (merged per-replica
	// snapshots, SLO burn rates) feeds the fleet_p99_micros and burn_rate
	// report fields.
	_, fleetObs, err := fleet.ReplayWithObs(fleet.ReplayConfig{Seed: seed ^ 0xf1ee7})
	if err != nil {
		return serveBenchOut{}, err
	}

	// Overload tier: a seeded virtual-time flash crowd through the admission
	// controller and deadline machinery — shed/expired/goodput with zero
	// wall-clock dependence.
	lg := runLoadgen(defaultLoadgen(n*40, seed^0x10ad))

	snap := obs.Default().Snapshot()
	return serveBenchOut{snap: &snap, single: elapsed, batch: elapsedB, cascade: elapsedC, loadgen: lg, fleetObs: fleetObs}, nil
}

// runServeBench executes serveBenchRun and writes the snapshot plus run
// metadata to out as indented JSON. Emit-only: nothing here enforces a
// latency threshold — the artifact exists so regressions show up in diffs,
// not so CI flakes on a loaded machine.
func runServeBench(n int, out string, seed uint64) error {
	if n < 1 {
		n = 1
	}
	r, err := serveBenchRun(n, seed)
	if err != nil {
		return err
	}
	// fleet_p99_micros comes from the MERGED per-replica latency histogram
	// of the replayed episode; burn_rate is the worse of the fleet SLO's
	// fast and slow windows. Both are deterministic under the episode seed.
	fleetP99 := 0.0
	if h, ok := r.fleetObs.Merged.Histograms["serve.request.seconds"]; ok {
		fleetP99 = h.Quantile(0.99) * 1e6
	}
	burn := r.fleetObs.BurnFast
	if r.fleetObs.BurnSlow > burn {
		burn = r.fleetObs.BurnSlow
	}
	report := struct {
		Bench             string        `json:"bench"`
		Inferences        int           `json:"inferences"`
		Seed              uint64        `json:"seed"`
		BatchSize         int           `json:"batch_size"`
		WallSeconds       float64       `json:"wall_seconds"`
		MicrosPerInf      float64       `json:"micros_per_inference"`
		MicrosPerInfBatch float64       `json:"micros_per_inference_batch"`
		MicrosPerInfCas   float64       `json:"micros_per_inference_cascade2"`
		FleetP99Micros    float64       `json:"fleet_p99_micros"`
		BurnRate          float64       `json:"burn_rate"`
		Loadgen           loadgenResult `json:"loadgen"`
		Metrics           *obs.Snapshot `json:"metrics"`
	}{
		Bench:             "serve",
		Inferences:        n,
		Seed:              seed,
		BatchSize:         serveBatchSize,
		WallSeconds:       r.single.Seconds(),
		MicrosPerInf:      float64(r.single.Microseconds()) / float64(n),
		MicrosPerInfBatch: float64(r.batch.Microseconds()) / float64(n),
		MicrosPerInfCas:   float64(r.cascade.Microseconds()) / float64(n),
		FleetP99Micros:    fleetP99,
		BurnRate:          burn,
		Loadgen:           r.loadgen,
		Metrics:           r.snap,
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("servebench: %d inferences in %.3fs (%.1f µs each; batch-%d %.1f µs each; 2-layer cascade %.1f µs each; loadgen goodput %.3f, SLO attainment %.3f), snapshot written to %s\n",
		n, r.single.Seconds(), report.MicrosPerInf, serveBatchSize, report.MicrosPerInfBatch, report.MicrosPerInfCas,
		r.loadgen.Goodput, r.loadgen.SLOAttainment, out)
	return nil
}
