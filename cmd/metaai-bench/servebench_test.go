package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/obs"
)

// TestServeBenchDeterministicFingerprint is the CI observability-determinism
// gate: two servebench runs under the same seed must produce bit-identical
// metric fingerprints (counters, gauge bits, histogram observation counts).
// Wall-clock sums and bucket placements are legitimately nondeterministic
// and are excluded by Fingerprint by construction.
func TestServeBenchDeterministicFingerprint(t *testing.T) {
	defer obs.SetEnabled(false)
	a, _, _, _, err := serveBenchRun(50, 3)
	if err != nil {
		t.Fatal(err)
	}
	fpA := a.Fingerprint()
	b, _, _, _, err := serveBenchRun(50, 3)
	if err != nil {
		t.Fatal(err)
	}
	fpB := b.Fingerprint()
	if len(fpA) == 0 {
		t.Fatal("empty fingerprint: instrumentation recorded nothing")
	}
	if !reflect.DeepEqual(fpA, fpB) {
		t.Fatalf("seeded runs diverged:\nrun A: %v\nrun B: %v", fpA, fpB)
	}
	// 50 through the single surface + 50 through the batched static-channel
	// tier + 50 through the 2-layer cascade.
	if fpA["counter:ota.inferences"] != 150 {
		t.Fatalf("ota.inferences = %d, want 150", fpA["counter:ota.inferences"])
	}
	if fpA["histcount:ota.infer.seconds"] != 150 {
		t.Fatalf("ota.infer.seconds count = %d, want 150", fpA["histcount:ota.infer.seconds"])
	}
	if fpA["counter:mts.solve.calls"] == 0 {
		t.Fatal("mts.solve.calls = 0: deployment solve was not instrumented")
	}
	if fpA["counter:ota.cascade.deploys"] != 1 {
		t.Fatalf("ota.cascade.deploys = %d, want 1", fpA["counter:ota.cascade.deploys"])
	}
}

// TestServeBenchWritesReport exercises the emit path end to end: the JSON
// artifact must parse and carry the non-zero metric sections the README
// points people at.
func TestServeBenchWritesReport(t *testing.T) {
	defer obs.SetEnabled(false)
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := runServeBench(20, out, 1); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Bench      string  `json:"bench"`
		Inferences int     `json:"inferences"`
		BatchSize  int     `json:"batch_size"`
		CascadeUs  float64 `json:"micros_per_inference_cascade2"`
		Metrics    struct {
			Counters   map[string]int64           `json:"counters"`
			Histograms map[string]json.RawMessage `json:"histograms"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(blob, &report); err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	if report.Bench != "serve" || report.Inferences != 20 {
		t.Fatalf("report header = (%q, %d), want (serve, 20)", report.Bench, report.Inferences)
	}
	if report.CascadeUs <= 0 {
		t.Fatal("artifact carries no cascade hot-path latency")
	}
	if report.BatchSize != serveBatchSize {
		t.Fatalf("batch_size = %d, want %d", report.BatchSize, serveBatchSize)
	}
	if report.Metrics.Counters["ota.inferences"] != 60 {
		t.Fatalf("ota.inferences = %d, want 60 (20 single + 20 batched + 20 cascade)", report.Metrics.Counters["ota.inferences"])
	}
	if _, ok := report.Metrics.Histograms["ota.infer.seconds"]; !ok {
		t.Fatal("snapshot missing ota.infer.seconds histogram")
	}
}
