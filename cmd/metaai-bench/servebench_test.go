package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/obs"
)

// TestServeBenchDeterministicFingerprint is the CI observability-determinism
// gate: two servebench runs under the same seed must produce bit-identical
// metric fingerprints (counters, gauge bits, histogram observation counts).
// Wall-clock sums and bucket placements are legitimately nondeterministic
// and are excluded by Fingerprint by construction.
func TestServeBenchDeterministicFingerprint(t *testing.T) {
	defer obs.SetEnabled(false)
	a, err := serveBenchRun(50, 3)
	if err != nil {
		t.Fatal(err)
	}
	fpA := a.snap.Fingerprint()
	b, err := serveBenchRun(50, 3)
	if err != nil {
		t.Fatal(err)
	}
	fpB := b.snap.Fingerprint()
	if len(fpA) == 0 {
		t.Fatal("empty fingerprint: instrumentation recorded nothing")
	}
	if !reflect.DeepEqual(fpA, fpB) {
		t.Fatalf("seeded runs diverged:\nrun A: %v\nrun B: %v", fpA, fpB)
	}
	// 50 through the single surface + 50 through the batched static-channel
	// tier + 50 through the 2-layer cascade.
	if fpA["counter:ota.inferences"] != 150 {
		t.Fatalf("ota.inferences = %d, want 150", fpA["counter:ota.inferences"])
	}
	if fpA["histcount:ota.infer.seconds"] != 150 {
		t.Fatalf("ota.infer.seconds count = %d, want 150", fpA["histcount:ota.infer.seconds"])
	}
	if fpA["counter:mts.solve.calls"] == 0 {
		t.Fatal("mts.solve.calls = 0: deployment solve was not instrumented")
	}
	if fpA["counter:ota.cascade.deploys"] != 1 {
		t.Fatalf("ota.cascade.deploys = %d, want 1", fpA["counter:ota.cascade.deploys"])
	}
	// The loadgen tier extends the fingerprint: the flash crowd offered
	// every arrival and its overload answers are part of the deterministic
	// surface CI pins.
	if fpA["counter:loadgen.offered"] != 50*40 {
		t.Fatalf("loadgen.offered = %d, want %d", fpA["counter:loadgen.offered"], 50*40)
	}
	if fpA["counter:loadgen.brownout_shed"] == 0 {
		t.Fatal("loadgen.brownout_shed = 0: the flash crowd never engaged the admission controller")
	}
	if fpA["counter:loadgen.expired"] == 0 {
		t.Fatal("loadgen.expired = 0: no queued request ever outlived its deadline budget")
	}
	if a.loadgen != b.loadgen {
		t.Fatalf("seeded loadgen episodes diverged:\nrun A: %+v\nrun B: %+v", a.loadgen, b.loadgen)
	}
	// The fleet observability plane is part of the pinned surface: the
	// MERGED per-replica snapshot from the replayed episode must fingerprint
	// identically across runs, carry the replicas' serving series, and the
	// fleet counters must agree between the registry and the merge.
	mfpA, mfpB := a.fleetObs.Merged.Fingerprint(), b.fleetObs.Merged.Fingerprint()
	if len(mfpA) == 0 {
		t.Fatal("empty merged fleet fingerprint: no replica snapshots were merged")
	}
	if !reflect.DeepEqual(mfpA, mfpB) {
		t.Fatalf("merged fleet snapshots diverged:\nrun A: %v\nrun B: %v", mfpA, mfpB)
	}
	if mfpA["counter:serve.served"] == 0 || mfpA["histcount:serve.request.seconds"] == 0 {
		t.Fatalf("merged fleet snapshot missing replica serving series: %v", mfpA)
	}
	if mfpA["counter:serve.served"] != fpA["counter:fleet.forwards"] {
		t.Fatalf("merged replica serves (%d) disagree with fleet.forwards (%d)",
			mfpA["counter:serve.served"], fpA["counter:fleet.forwards"])
	}
	if a.fleetObs.BurnFast != b.fleetObs.BurnFast || a.fleetObs.BurnSlow != b.fleetObs.BurnSlow {
		t.Fatalf("fleet burn rates diverged: (%v,%v) vs (%v,%v)",
			a.fleetObs.BurnFast, a.fleetObs.BurnSlow, b.fleetObs.BurnFast, b.fleetObs.BurnSlow)
	}
}

// TestLoadgenFlashCrowdShape sanity-checks the canonical episode: the
// baseline is comfortably served, the flash crowd forces real shedding and
// expiry, and the scoreboard's fractions are internally consistent.
func TestLoadgenFlashCrowdShape(t *testing.T) {
	defer obs.SetEnabled(false)
	obs.SetEnabled(true)
	res := runLoadgen(defaultLoadgen(2000, 9))
	if res.Offered != 2000 {
		t.Fatalf("offered %d, want 2000", res.Offered)
	}
	if got := res.Answered + res.BrownoutShed + res.QueueShed + res.Expired; got != res.Offered {
		t.Fatalf("scoreboard leaks: %d answered + %d brownout + %d queue + %d expired != %d offered",
			res.Answered, res.BrownoutShed, res.QueueShed, res.Expired, res.Offered)
	}
	if res.BrownoutShed == 0 || res.PeakShedFrac == 0 {
		t.Fatalf("flash crowd never engaged the brownout: %+v", res)
	}
	if res.Goodput <= 0.5 || res.Goodput >= 1 {
		t.Fatalf("goodput %.3f outside the overloaded-but-serving band", res.Goodput)
	}
	if res.SLOAttainment <= 0.5 {
		t.Fatalf("SLO attainment %.3f: the brownout failed to protect served latency", res.SLOAttainment)
	}
}

// TestServeBenchWritesReport exercises the emit path end to end: the JSON
// artifact must parse and carry the non-zero metric sections the README
// points people at.
func TestServeBenchWritesReport(t *testing.T) {
	defer obs.SetEnabled(false)
	out := filepath.Join(t.TempDir(), "BENCH_serve.json")
	if err := runServeBench(20, out, 1); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Bench      string  `json:"bench"`
		Inferences int     `json:"inferences"`
		BatchSize  int     `json:"batch_size"`
		CascadeUs  float64 `json:"micros_per_inference_cascade2"`
		FleetP99Us float64 `json:"fleet_p99_micros"`
		BurnRate   float64 `json:"burn_rate"`
		Metrics    struct {
			Counters   map[string]int64           `json:"counters"`
			Histograms map[string]json.RawMessage `json:"histograms"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(blob, &report); err != nil {
		t.Fatalf("artifact does not parse: %v", err)
	}
	if report.Bench != "serve" || report.Inferences != 20 {
		t.Fatalf("report header = (%q, %d), want (serve, 20)", report.Bench, report.Inferences)
	}
	if report.CascadeUs <= 0 {
		t.Fatal("artifact carries no cascade hot-path latency")
	}
	if report.BatchSize != serveBatchSize {
		t.Fatalf("batch_size = %d, want %d", report.BatchSize, serveBatchSize)
	}
	// The replayed episode draws latencies in [150µs, 450µs); the quantile
	// interpolates within histogram buckets, so the p99 can overshoot the
	// draw band up to the enclosing bucket bound but never reach 1ms. The
	// clean episode burns nothing.
	if report.FleetP99Us < 150 || report.FleetP99Us >= 1000 {
		t.Fatalf("fleet_p99_micros = %v, want in [150µs, 1ms) for the replay's draw band", report.FleetP99Us)
	}
	if report.BurnRate != 0 {
		t.Fatalf("burn_rate = %v, want 0 for the clean replayed episode", report.BurnRate)
	}
	if report.Metrics.Counters["ota.inferences"] != 60 {
		t.Fatalf("ota.inferences = %d, want 60 (20 single + 20 batched + 20 cascade)", report.Metrics.Counters["ota.inferences"])
	}
	if _, ok := report.Metrics.Histograms["ota.infer.seconds"]; !ok {
		t.Fatal("snapshot missing ota.infer.seconds histogram")
	}
}
