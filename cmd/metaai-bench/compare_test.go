package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

// latencyReport builds a benchReport whose single histogram places every
// observation just under p99Us microseconds, so Quantile(0.99) lands
// predictably.
func latencyReport(p99Us float64) *benchReport {
	return &benchReport{
		Bench:        "serve",
		Inferences:   100,
		MicrosPerInf: p99Us,
		Metrics: &obs.Snapshot{
			Counters: map[string]int64{},
			Gauges:   map[string]float64{},
			Histograms: map[string]obs.HistogramSnapshot{
				"ota.infer.seconds": {
					Count: 100,
					Sum:   100 * p99Us / 1e6,
					Buckets: []obs.Bucket{
						{UpperBound: p99Us / 1e6, Count: 100},
						{UpperBound: math.Inf(1), Count: 0},
					},
				},
			},
		},
	}
}

func TestCompareAcceptsIdenticalAndImproved(t *testing.T) {
	old := latencyReport(100)
	if err := compareReports(old, latencyReport(100), 0.10, 50); err != nil {
		t.Fatalf("identical snapshots failed the gate: %v", err)
	}
	if err := compareReports(old, latencyReport(40), 0.10, 50); err != nil {
		t.Fatalf("improvement failed the gate: %v", err)
	}
}

func TestCompareFailsOnRegressionBeyondGate(t *testing.T) {
	// 100µs → 200µs: +100% relative, +100µs absolute — both gates tripped.
	if err := compareReports(latencyReport(100), latencyReport(200), 0.10, 50); err == nil {
		t.Fatal("2x p99 regression passed the gate")
	}
}

func TestCompareAbsoluteFloorSuppressesMicroNoise(t *testing.T) {
	// 3µs → 6µs: +100% relative but only +3µs absolute — scheduler noise at
	// this scale, and the floor must keep the gate quiet.
	if err := compareReports(latencyReport(3), latencyReport(6), 0.10, 50); err != nil {
		t.Fatalf("sub-floor regression failed the gate: %v", err)
	}
}

func TestCompareJustUnderThresholdPasses(t *testing.T) {
	// +9% with a generous absolute delta: under the 10% relative gate.
	if err := compareReports(latencyReport(1000), latencyReport(1090), 0.10, 50); err != nil {
		t.Fatalf("+9%% failed the 10%% gate: %v", err)
	}
}

// TestCompareRoundTripsPersistedSnapshot pins the full CLI path: a report
// marshaled the way runServeBench writes it (with "+Inf" bucket bounds)
// reloads through obs.Bucket.UnmarshalJSON and re-derives the same p99.
func TestCompareRoundTripsPersistedSnapshot(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	for path, r := range map[string]*benchReport{
		oldPath: latencyReport(100),
		newPath: latencyReport(300),
	} {
		blob, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := runCompare(oldPath, oldPath, 0.10, 50); err != nil {
		t.Fatalf("persisted self-compare failed: %v", err)
	}
	if err := runCompare(oldPath, newPath, 0.10, 50); err == nil {
		t.Fatal("persisted 3x regression passed the gate")
	}
	// The reloaded overflow bound must be +Inf, not a parse artifact.
	r, err := loadBenchReport(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	buckets := r.Metrics.Histograms["ota.infer.seconds"].Buckets
	if !math.IsInf(buckets[len(buckets)-1].UpperBound, 1) {
		t.Fatalf("overflow bound survived as %v, want +Inf", buckets[len(buckets)-1].UpperBound)
	}
}
