// Command metaai-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	metaai-bench -list
//	metaai-bench -exp table1
//	metaai-bench -exp all -scale full -seed 7
//
// Each experiment prints rows mirroring the corresponding paper artifact;
// DESIGN.md maps experiment ids to modules and EXPERIMENTS.md records
// paper-vs-measured values.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/dataset"
	"repro/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id to run, or \"all\"")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		scale   = flag.String("scale", "quick", "dataset scale: quick or full")
		seed    = flag.Uint64("seed", 1, "random seed")
		evalCap = flag.Int("evalcap", 200, "max test samples per accuracy evaluation (0 = all)")
		verbose = flag.Bool("v", false, "log progress")
		md      = flag.Bool("md", false, "emit GitHub-flavored markdown instead of aligned text")
		seeds   = flag.Int("seeds", 1, "run each experiment under this many consecutive seeds (variance check)")
		workers = flag.Int("workers", 1, "fan evaluations and sweep points across this many goroutines (1 = bit-exact serial)")
		sbench  = flag.Int("servebench", 0, "run this many observed serve-path inferences and emit a metric snapshot instead of an experiment")
		lgen    = flag.Int("loadgen", 0, "replay a seeded flash-crowd arrival trace of this many requests through the overload machinery and emit the shed/expired/goodput scoreboard")
		obsOut  = flag.String("obs-out", "BENCH_serve.json", "servebench / loadgen output file")
		compare = flag.Bool("compare", false, "compare two servebench snapshots (args: old.json new.json); exit non-zero on gated p99 regression")
		regress = flag.Float64("regress", 0.10, "-compare relative p99 regression threshold (0.10 = 10%)")
		floorUs = flag.Float64("regress-floor-us", 50, "-compare absolute regression floor in µs; smaller deltas never fail the gate")
		traceGo = flag.String("tracedump", "", "run the fixed-seed traced pipeline and write normalized trace exports to this file (the tracegate workload)")
	)
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "metaai-bench: -compare needs exactly two snapshot files: old.json new.json")
			os.Exit(2)
		}
		if err := runCompare(flag.Arg(0), flag.Arg(1), *regress, *floorUs); err != nil {
			fmt.Fprintf(os.Stderr, "metaai-bench: compare: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *traceGo != "" {
		if err := runTraceDump(*traceGo, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "metaai-bench: tracedump: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *sbench > 0 {
		if err := runServeBench(*sbench, *obsOut, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "metaai-bench: servebench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *lgen > 0 {
		if err := runLoadgenBench(*lgen, *obsOut, *seed); err != nil {
			fmt.Fprintf(os.Stderr, "metaai-bench: loadgen: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *list {
		for _, id := range experiments.IDs() {
			r, _ := experiments.Lookup(id)
			fmt.Printf("%-15s %s\n", id, r.Title)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "metaai-bench: pass -exp <id> or -list")
		flag.Usage()
		os.Exit(2)
	}
	sc := dataset.Quick
	switch *scale {
	case "quick":
	case "full":
		sc = dataset.Full
	default:
		fmt.Fprintf(os.Stderr, "metaai-bench: unknown scale %q (quick|full)\n", *scale)
		os.Exit(2)
	}
	if *seeds < 1 {
		*seeds = 1
	}
	ids := []string{*exp}
	if *exp == "all" {
		ids = experiments.IDs()
	}
	for s := 0; s < *seeds; s++ {
		ctx := experiments.NewCtx(sc, *seed+uint64(s))
		ctx.EvalCap = *evalCap
		ctx.Workers = *workers
		if *verbose {
			ctx.Log = os.Stderr
		}
		for _, id := range ids {
			start := time.Now()
			res, err := experiments.Run(id, ctx)
			if err != nil {
				fmt.Fprintf(os.Stderr, "metaai-bench: %s: %v\n", id, err)
				os.Exit(1)
			}
			if *seeds > 1 {
				res.Title += fmt.Sprintf(" [seed %d]", *seed+uint64(s))
			}
			if *md {
				if err := res.Markdown(os.Stdout); err != nil {
					fmt.Fprintf(os.Stderr, "metaai-bench: %v\n", err)
					os.Exit(1)
				}
			} else {
				res.Fprint(os.Stdout)
				fmt.Printf("  (%.1fs)\n\n", time.Since(start).Seconds())
			}
		}
	}
}
