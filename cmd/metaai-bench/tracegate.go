package main

import (
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/obs/trace"
)

// runTraceDump is the trace-determinism gate's workload: with tracing armed
// at sample=1 (retain everything), build the synthetic pipeline end to end
// — train, schedule solve, deploy — and run a handful of standalone
// inferences, then write every retained trace's NORMALIZED export to out,
// sorted by trace ID.
//
// Everything in a normalized export is a pure function of the seed: trace
// IDs derive from (seed, stage tag, process-local ordinal), span IDs from
// (trace ID, insertion index), timestamps are replaced by index-scaled
// placeholders, and attributes carry only seed-determined values. So two
// PROCESS runs of this dump under the same seed must produce byte-identical
// files — `make tracegate` runs it twice and cmps. (Two in-process runs
// would differ: the build/infer ordinals keep advancing, exactly as they
// should for a live server's request traces.)
func runTraceDump(out string, seed uint64) error {
	trace.Default().Enable(256, 1.0)
	defer trace.Default().Disable()

	cfg := core.DefaultConfig("mnist")
	cfg.Seed = seed
	p, err := core.New(cfg)
	if err != nil {
		return err
	}
	data := dataset.MustLoad("mnist", cfg.Scale, cfg.Seed)
	for i := 0; i < 4 && i < len(data.Test); i++ {
		p.Infer(data.Test[i].X)
	}

	sums := trace.Default().List()
	sort.Slice(sums, func(i, j int) bool { return sums[i].ID < sums[j].ID })
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	for _, s := range sums {
		tr, flags := trace.Default().Get(s.ID)
		if tr == nil {
			continue
		}
		if err := trace.WriteJSON(f, tr, flags, trace.ExportOptions{Normalize: true}); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(f); err != nil {
			return err
		}
	}
	fmt.Printf("tracedump: %d normalized traces written to %s\n", len(sums), out)
	return nil
}
