package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"time"

	"repro/internal/admission"
	"repro/internal/obs"
	"repro/internal/rng"
)

// The loadgen tier replays a bursty flash-crowd arrival trace against the
// serving stack's overload machinery — the admission controller, the bounded
// queue, and the deadline-at-dequeue check — in VIRTUAL time: every arrival,
// service completion, and feedback tick advances a simulated clock, so the
// whole trace is a pure function of its seed and the counters land in the
// obsgate fingerprint with bit-identical values run after run. It is the
// harness half of the ROADMAP's load-generator item: the queueing model and
// policy knobs are the real ones (admission.Controller, FIFO bounds,
// StatusExpired semantics), only the inference is abstracted to a fixed
// virtual service time.
//
//	loadgen.offered        arrivals presented to the stack
//	loadgen.brownout_shed  arrivals the admission controller browned out
//	loadgen.shed           arrivals dropped on a full queue
//	loadgen.expired        dequeues past their deadline budget (no service spent)
//	loadgen.answered       requests served to completion
//	loadgen.slo_ok         answered requests that met the latency SLO
var (
	lgOffered  = obs.NewCounter("loadgen.offered")
	lgBrownout = obs.NewCounter("loadgen.brownout_shed")
	lgShed     = obs.NewCounter("loadgen.shed")
	lgExpired  = obs.NewCounter("loadgen.expired")
	lgAnswered = obs.NewCounter("loadgen.answered")
	lgSLOOk    = obs.NewCounter("loadgen.slo_ok")
)

// loadgenConfig parameterizes one flash-crowd episode.
type loadgenConfig struct {
	Arrivals int           // offered requests across the whole trace
	Seed     uint64        // arrival-jitter seed; same seed, same trace
	SLO      time.Duration // p99 target fed to the admission controller
	Deadline time.Duration // per-request budget, checked at dequeue
	Workers  int           // virtual service lanes
	Queue    int           // FIFO bound, the queue-full shed point
	Service  time.Duration // deterministic per-request service time
	BaseRate float64       // baseline arrival rate, requests/second
	FlashX   float64       // rate multiplier inside the flash-crowd window
	// FlashFrom/FlashTo bound the flash crowd as fractions of the arrival
	// count: arrivals in [From·N, To·N) come FlashX times faster.
	FlashFrom, FlashTo float64
	// ObserveEvery is the virtual period of the p99 → AIMD feedback loop
	// (the admitEvery knob of the live server).
	ObserveEvery time.Duration
}

// defaultLoadgen is the canonical flash crowd: a fleet comfortably serving
// its baseline (2 lanes × 2ms = 1000 rps capacity against 500 rps offered)
// hit by an 8× crowd for the middle third of the trace — deep overload, so
// every overload answer (brownout, queue-full, expiry) is exercised — then
// a recovery tail long enough for the controller to relax again.
func defaultLoadgen(arrivals int, seed uint64) loadgenConfig {
	return loadgenConfig{
		Arrivals:     arrivals,
		Seed:         seed,
		SLO:          20 * time.Millisecond,
		Deadline:     50 * time.Millisecond,
		Workers:      2,
		Queue:        64,
		Service:      2 * time.Millisecond,
		BaseRate:     500,
		FlashX:       8,
		FlashFrom:    1.0 / 3,
		FlashTo:      2.0 / 3,
		ObserveEvery: 10 * time.Millisecond,
	}
}

// loadgenResult is the episode's scoreboard. Goodput counts a request only
// if it was answered at all; SLOAttainment further requires the answer to
// have met the latency target — the goal-oriented metric the brownout
// controller optimizes for.
type loadgenResult struct {
	Offered       int     `json:"offered"`
	BrownoutShed  int     `json:"brownout_shed"`
	QueueShed     int     `json:"queue_shed"`
	Expired       int     `json:"expired"`
	Answered      int     `json:"answered"`
	AnsweredInSLO int     `json:"answered_in_slo"`
	Goodput       float64 `json:"goodput"`        // answered / offered
	SLOAttainment float64 `json:"slo_attainment"` // answered_in_slo / answered
	PeakShedFrac  float64 `json:"peak_shed_fraction"`
	WallVirtual   float64 `json:"virtual_seconds"` // trace span in virtual time
}

// runLoadgen replays one episode. Everything is integer virtual time; the
// only floating point is the exponential arrival jitter and the p99 window,
// both seeded — two runs with the same config are identical to the bit.
func runLoadgen(cfg loadgenConfig) loadgenResult {
	src := rng.New(cfg.Seed)
	ac := admission.New(cfg.SLO)

	var res loadgenResult
	var clock time.Duration
	workerFree := make([]time.Duration, cfg.Workers)
	type pending struct{ arrival time.Duration }
	var queue []pending

	// p99 feedback window: the answered latencies since the last feedback
	// tick — an interval scrape, so the signal recovers as soon as the
	// queue drains instead of ratcheting on flash-era stragglers.
	var window []time.Duration
	observe := func() {
		if len(window) == 0 {
			ac.Observe(0)
			return
		}
		sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
		ac.Observe(window[len(window)*99/100])
		window = window[:0]
	}
	record := func(lat time.Duration) {
		window = append(window, lat)
		res.Answered++
		lgAnswered.Inc()
		if lat <= cfg.SLO {
			res.AnsweredInSLO++
			lgSLOOk.Inc()
		}
	}

	// serveHead dequeues the oldest queued request onto the earliest-free
	// lane: the deadline check happens HERE, at dequeue — a request whose
	// budget died in the queue costs zero service, exactly the serving
	// stack's StatusExpired path.
	serveHead := func() {
		lane := 0
		for w := 1; w < len(workerFree); w++ {
			if workerFree[w] < workerFree[lane] {
				lane = w
			}
		}
		h := queue[0]
		queue = queue[1:]
		start := workerFree[lane]
		if start < h.arrival {
			start = h.arrival
		}
		if start > h.arrival+cfg.Deadline {
			res.Expired++
			lgExpired.Inc()
			return
		}
		workerFree[lane] = start + cfg.Service
		record(start + cfg.Service - h.arrival)
	}
	minFree := func() time.Duration {
		m := workerFree[0]
		for _, f := range workerFree[1:] {
			if f < m {
				m = f
			}
		}
		return m
	}

	nextObserve := cfg.ObserveEvery
	flashLo := int(float64(cfg.Arrivals) * cfg.FlashFrom)
	flashHi := int(float64(cfg.Arrivals) * cfg.FlashTo)
	for i := 0; i < cfg.Arrivals; i++ {
		rate := cfg.BaseRate
		if i >= flashLo && i < flashHi {
			rate *= cfg.FlashX
		}
		// Exponential inter-arrival jitter at the phase's rate.
		clock += time.Duration(-math.Log(1-src.Float64()) / rate * float64(time.Second))

		// Drain every dequeue that happens before this arrival, then run the
		// feedback loop's ticks up to the arrival instant.
		for len(queue) > 0 && minFree() <= clock {
			serveHead()
		}
		for nextObserve <= clock {
			observe()
			if f := ac.Fraction(); f > res.PeakShedFrac {
				res.PeakShedFrac = f
			}
			nextObserve += cfg.ObserveEvery
		}

		res.Offered++
		lgOffered.Inc()
		if !ac.Admit() {
			res.BrownoutShed++
			lgBrownout.Inc()
			continue
		}
		if len(queue) >= cfg.Queue {
			res.QueueShed++
			lgShed.Inc()
			continue
		}
		queue = append(queue, pending{arrival: clock})
	}
	for len(queue) > 0 {
		serveHead()
	}
	res.Goodput = float64(res.Answered) / float64(res.Offered)
	if res.Answered > 0 {
		res.SLOAttainment = float64(res.AnsweredInSLO) / float64(res.Answered)
	}
	res.WallVirtual = clock.Seconds()
	return res
}

// runLoadgenBench is the standalone `-loadgen N` entry point: one seeded
// flash-crowd episode, the scoreboard plus metric snapshot written to out
// as indented JSON (the same artifact flow as -servebench, so regressions
// show up in diffs of the committed BENCH_serve.json).
func runLoadgenBench(arrivals int, out string, seed uint64) error {
	if arrivals < 1 {
		arrivals = 1
	}
	obs.SetEnabled(true)
	obs.Default().Reset()
	res := runLoadgen(defaultLoadgen(arrivals, seed))
	snap := obs.Default().Snapshot()
	report := struct {
		Bench    string        `json:"bench"`
		Arrivals int           `json:"arrivals"`
		Seed     uint64        `json:"seed"`
		Loadgen  loadgenResult `json:"loadgen"`
		Metrics  *obs.Snapshot `json:"metrics"`
	}{Bench: "loadgen", Arrivals: arrivals, Seed: seed, Loadgen: res, Metrics: &snap}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if err := os.WriteFile(out, blob, 0o644); err != nil {
		return err
	}
	fmt.Printf("loadgen: %d offered over %.2fs virtual — %d answered (goodput %.3f, SLO attainment %.3f), %d brownout, %d queue-shed, %d expired, peak shed fraction %.3f; written to %s\n",
		res.Offered, res.WallVirtual, res.Answered, res.Goodput, res.SLOAttainment,
		res.BrownoutShed, res.QueueShed, res.Expired, res.PeakShedFrac, out)
	return nil
}
