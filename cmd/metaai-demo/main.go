// Command metaai-demo walks through one over-the-air inference step by
// step, printing what happens at each stage of the paper's pipeline
// (Fig 4): encoding, modulation, the per-symbol metasurface schedule, the
// channel, and the receiver's accumulation.
//
//	metaai-demo -dataset afhq
package main

import (
	"flag"
	"fmt"
	"math/cmplx"
	"os"
	"strings"

	metaai "repro"

	"repro/internal/dataset"
)

func main() {
	var (
		ds   = flag.String("dataset", "mnist", "dataset: "+strings.Join(metaai.Datasets(), ", "))
		seed = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	cfg := metaai.DefaultConfig(*ds)
	cfg.Seed = *seed
	fmt.Printf("[1/5] training the complex LNN on %q (lr 8e-3, momentum 0.95, batch 64)...\n", *ds)
	pipe, err := metaai.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "metaai-demo: %v\n", err)
		os.Exit(1)
	}
	data := dataset.MustLoad(*ds, cfg.Scale, cfg.Seed)
	sample := data.Test[0]

	fmt.Printf("[2/5] encoding one sample: %d features -> %d bytes -> %d %s symbols\n",
		len(sample.X), len(sample.X), pipe.Train.U, cfg.Scheme)
	enc := pipe.Enc.Encode(sample.X)
	fmt.Printf("      first symbols: ")
	for i := 0; i < 4 && i < len(enc); i++ {
		fmt.Printf("(%.2f%+.2fi) ", real(enc[i]), imag(enc[i]))
	}
	fmt.Println("...")

	fmt.Printf("[3/5] metasurface schedule: %d outputs x %d symbols, %d-atom 2-bit configs\n",
		pipe.Train.Classes, pipe.Train.U, len(pipe.System.Schedule[0][0]))
	cfg0 := pipe.System.Schedule[0][0]
	fmt.Printf("      config(output 0, symbol 0): %v... (phase states x pi/2)\n", cfg0[:16])
	fmt.Printf("      realized weight H(0,0) = %.1f∠%.0f°, desired scale gamma = %.1f\n",
		cmplx.Abs(pipe.System.Realized.At(0, 0)),
		cmplx.Phase(pipe.System.Realized.At(0, 0))*180/3.14159265,
		pipe.System.Gamma)

	fmt.Printf("[4/5] transmission through the office channel (multipath cancelled by\n")
	fmt.Printf("      zero-mean chips + in-symbol MTS flips; coarse-detection sync)\n")
	acc := pipe.System.Accumulate(enc)
	fmt.Printf("      receiver accumulators |y_r|:\n")
	logits := make([]float64, len(acc))
	for r, a := range acc {
		logits[r] = cmplx.Abs(a)
	}
	var maxL float64
	for _, l := range logits {
		if l > maxL {
			maxL = l
		}
	}
	for r, l := range logits {
		bar := strings.Repeat("#", int(28*l/maxL))
		fmt.Printf("      y_%d %8.1f %s\n", r, l, bar)
	}

	class, _ := pipe.Infer(sample.X)
	fmt.Printf("[5/5] prediction: class %d (true class %d) — the server never saw the raw data\n",
		class, sample.Label)
	fmt.Printf("\npipeline accuracy: simulation %.2f%%, over the air %.2f%%\n",
		100*pipe.SimAccuracy(), 100*pipe.AirAccuracy())
}
