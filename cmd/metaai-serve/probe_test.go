package main

import (
	"testing"
	"time"

	"repro/internal/airproto"
	"repro/internal/checkpoint"
	"repro/internal/rng"
)

// TestExchangeNoBackoffAfterFinalFailure pins the retry-loop fix: the
// jittered exponential backoff sleeps only BETWEEN attempts. Once the final
// attempt has failed, exchange returns the verdict immediately instead of
// sleeping one more (useless, and largest) backoff interval first.
func TestExchangeNoBackoffAfterFinalFailure(t *testing.T) {
	addr, received := fakeResponder(t, func(req *airproto.Frame, n int) []*airproto.Frame {
		return []*airproto.Frame{airproto.Nack(req.ID, airproto.StatusDegraded, 0)}
	})
	conn := dialServer(t, addr)

	const base = 150 * time.Millisecond
	start := time.Now()
	_, err := exchange(conn, &airproto.Frame{ID: 6, Data: []complex128{1}},
		2*time.Second, 0, base, 3, rng.New(1))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("exchange succeeded against a permanently degraded server")
	}
	if got := received.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
	// Two inter-attempt sleeps happened (each at least base/2, so ≥ 225ms
	// total for the 1× and 2× intervals)...
	if elapsed < 225*time.Millisecond {
		t.Fatalf("exchange returned in %v: the inter-attempt backoff never ran", elapsed)
	}
	// ...but never a third: the post-final-failure sleep would be the 4×
	// interval, at least 300ms on top of the ≤675ms the two legitimate
	// sleeps can take.
	if elapsed > 900*time.Millisecond {
		t.Fatalf("exchange took %v: it slept after the final attempt's failure", elapsed)
	}
}

// TestExchangeBudgetBoundsRetries pins the overall-deadline contract: with a
// budget that covers one attempt but not the retry schedule behind it, the
// exchange fails with a budget error well before attempts × timeout, the
// remaining attempts are never sent, and the exhaustion counts in its own
// counter rather than blending into the per-attempt timeouts.
func TestExchangeBudgetBoundsRetries(t *testing.T) {
	// A silent server: every attempt times out at its read deadline.
	addr, received := fakeResponder(t, func(req *airproto.Frame, n int) []*airproto.Frame {
		return nil
	})
	conn := dialServer(t, addr)

	before := probeBudgetExhausted.Value()
	const timeout, budget = 200 * time.Millisecond, 250 * time.Millisecond
	start := time.Now()
	_, err := exchange(conn, &airproto.Frame{ID: 8, Data: []complex128{1}},
		timeout, budget, 400*time.Millisecond, 5, rng.New(1))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("exchange succeeded against a silent server")
	}
	// Unbudgeted, 5 silent attempts plus 4 backoffs would run multiple
	// seconds; the budget caps the whole exchange near 250ms (the first
	// attempt's full timeout, then the backoff that would overrun).
	if elapsed > budget+300*time.Millisecond {
		t.Fatalf("exchange took %v against a %v budget", elapsed, budget)
	}
	if got := received.Load(); got > 2 {
		t.Fatalf("server saw %d attempts inside a budget that affords at most 2", got)
	}
	if got := probeBudgetExhausted.Value() - before; got != 1 {
		t.Fatalf("probe.budget_exhausted advanced by %d, want 1", got)
	}
}

// TestExchangeBudgetClipsAttemptTimeout pins the other half of the budget
// arithmetic: the final attempt's read deadline is the REMAINING budget, not
// the full per-attempt timeout, so the exchange never overruns its contract
// just because timeout > budget.
func TestExchangeBudgetClipsAttemptTimeout(t *testing.T) {
	addr, _ := fakeResponder(t, func(req *airproto.Frame, n int) []*airproto.Frame {
		return nil
	})
	conn := dialServer(t, addr)

	const budget = 150 * time.Millisecond
	start := time.Now()
	_, err := exchange(conn, &airproto.Frame{ID: 9, Data: []complex128{1}},
		10*time.Second, budget, time.Millisecond, 1, rng.New(1))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("exchange succeeded against a silent server")
	}
	if elapsed > budget+200*time.Millisecond {
		t.Fatalf("single attempt waited %v: the %v budget did not clip the 10s timeout", elapsed, budget)
	}
}

// TestProbeStatsReadsServerCounters exercises the KindStats exchange end to
// end: a real airServer answers the probe's counter request with its served/
// heal/swap/rollback/canary/epoch numbers, decoded by serverStats.
func TestProbeStatsReadsServerCounters(t *testing.T) {
	d := testDeployment(t, 71)
	journal, err := checkpoint.OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := newAirServer(serverConfig{
		deployment: d,
		journal:    journal,
		meta:       checkpoint.Meta{Dataset: "synthetic", Seed: 71},
		workers:    2,
		sessionSrc: rng.New(4),
		logf:       t.Logf,
	})
	addr, shutdown := startServer(t, srv)
	defer shutdown()
	conn := dialServer(t, addr)

	// One data request, one republish heal: known counter values.
	req := &airproto.Frame{ID: 1, Data: testSymbols(d.InputLen(), 1)}
	if _, err := exchange(conn, req, 5*time.Second, 0, time.Millisecond, 3, rng.New(2)); err != nil {
		t.Fatal(err)
	}
	srv.heal()

	stats, fleetStats, err := serverStats(conn, 99, 5*time.Second, 0, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	if fleetStats != nil {
		t.Fatalf("a plain replica answered with fleet stats: %v", fleetStats)
	}
	want := map[string]int64{
		"served": 1, "heals": 1, "swaps": 1,
		"rollbacks": 0, "canary_rejects": 0, "epoch_seq": 2,
	}
	for k, v := range want {
		if stats[k] != v {
			t.Fatalf("server stats[%q] = %d, want %d (full: %v)", k, stats[k], v, stats)
		}
	}
}
