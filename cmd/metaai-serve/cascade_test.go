package main

import (
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/cplx"
	"repro/internal/mts"
	"repro/internal/ota"
	"repro/internal/rng"
)

// testCascadeDeployment is testDeployment with two extra relay layers and a
// non-trivial power allocation — the state a -layers 3 server journals.
func testCascadeDeployment(t testing.TB, seed uint64) *ota.Deployment {
	t.Helper()
	src := rng.New(seed)
	w := cplx.NewMat(4, 16)
	wsrc := rng.New(7)
	for i := range w.Data {
		w.Data[i] = cplx.Expi(wsrc.Phase()) * complex(0.5+wsrc.Float64(), 0)
	}
	opts := ota.NewOptions(src.Split())
	stack := make([]ota.CascadeLayer, 2)
	for k := range stack {
		s, err := mts.NewSurface(8, 8, 2, 5.25, nil)
		if err != nil {
			t.Fatal(err)
		}
		stack[k] = ota.CascadeLayer{
			Surface:  s,
			Geometry: mts.Geometry{TxDistM: 1.5, TxAngleDeg: 20, RxDistM: 2, RxAngleDeg: 30 + 5*float64(k)},
		}
	}
	opts.Stack = stack
	opts.LayerPower = []float64{1, 1.2, 0.8}
	opts.HopNoise = 0.03
	d, err := ota.NewDeployment(w, opts, src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestKillAndRecoverCascadeBitIdentity extends the crash-recovery acceptance
// test to stacked cascades: a server journals a 3-layer epoch (sealed at
// checkpoint format version 2), dies, and a restarted process recovers the
// full cascade — layers, relay schedules, power allocation — and serves
// bit-identical accumulators.
func TestKillAndRecoverCascadeBitIdentity(t *testing.T) {
	dir := t.TempDir()
	d := testCascadeDeployment(t, 51)
	golden := serveAccumBits(t, d, 4)

	journal, err := checkpoint.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := newAirServer(serverConfig{
		deployment: d,
		journal:    journal,
		meta:       checkpoint.Meta{Dataset: "synthetic", Seed: 51},
		workers:    2,
		sessionSrc: rng.New(5),
		logf:       t.Logf,
	})
	if got := srv.epochSeq.Load(); got != 1 {
		t.Fatalf("initial epoch journaled as seq %d, want 1", got)
	}
	// Kill: abandon the server; restart with a fresh handle over the dir.
	j2, err := checkpoint.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := recoverEpoch(j2, "synthetic")
	if err != nil {
		t.Fatal(err)
	}
	if ep == nil {
		t.Fatal("journal holds an epoch but recovery reported cold start")
	}
	restored, err := restoreDeployment(ep)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Layers() != 3 {
		t.Fatalf("recovered deployment has %d layers, want 3", restored.Layers())
	}
	if got := restored.LayerPowerAlloc(); len(got) != 3 || got[1] != 1.2 || got[2] != 0.8 {
		t.Fatalf("recovered power allocation %v, want [1 1.2 0.8]", got)
	}
	assertSameBits(t, serveAccumBits(t, restored, 4), golden)
}
