package main

import (
	"net"
	"testing"
	"time"

	"repro/internal/admission"
	"repro/internal/airproto"
	"repro/internal/obs"
	"repro/internal/rng"
)

// sendFrame marshals and writes one frame on a connected UDP socket.
func sendFrame(t *testing.T, conn *net.UDPConn, f *airproto.Frame) {
	t.Helper()
	out, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(out); err != nil {
		t.Fatal(err)
	}
}

// readFrame reads one frame, failing the test on timeout.
func readFrame(t *testing.T, conn *net.UDPConn) *airproto.Frame {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 65535)
	n, err := conn.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	f, err := airproto.Unmarshal(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestOverloadShedExpireAndControlPlane walks the three overload answers a
// server gives — queue-full StatusDegraded, deadline StatusExpired at
// dequeue, and brownout StatusRetryAfter — with the obs monitor armed, and
// pins the invariants the chaos gate leans on. Run under -race: the shed
// path, the expiry path, and the admission controller all touch state the
// read loop and workers share.
func TestOverloadShedExpireAndControlPlane(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	shed0, brown0, exp0 := shedCount.Value(), brownoutShedCount.Value(), expiredCount.Value()

	d := testDeployment(t, 11)
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	ac := admission.New(50 * time.Millisecond)
	srv := newAirServer(serverConfig{
		deployment: d,
		workers:    1,
		batch:      1,
		queue:      2,
		admit:      ac,
		admitEvery: time.Hour, // feedback loop never ticks; the test drives the fraction
		sessionSrc: rng.New(99),
		logf:       t.Logf,
		preInfer: func() {
			select {
			case entered <- struct{}{}:
			default:
			}
			<-gate
		},
	})
	addr, shutdown := startServer(t, srv)
	defer shutdown()
	conn := dialServer(t, addr)

	symbols := func(id uint32) []complex128 { return testSymbols(d.InputLen(), uint64(id)) }

	// Occupy the single worker: request 1 is dequeued and pinned inside
	// preInfer, leaving the queue empty and the worker busy.
	sendFrame(t, conn, &airproto.Frame{ID: 1, Data: symbols(1)})
	<-entered

	// Fill the queue with two deadline-stamped requests. Their 20ms budget
	// will be long dead by the time the worker unblocks — the expiry-at-
	// dequeue path.
	for id := uint32(2); id <= 3; id++ {
		req := &airproto.Frame{ID: id, Data: symbols(id)}
		req.SetDeadline(20 * time.Millisecond)
		sendFrame(t, conn, req)
	}
	waitFor(t, "queue to hold 2 requests", func() bool { return srv.inflight.Load() == 2 })

	// Queue full: the next data frames shed with StatusDegraded. These never
	// consume an admission ordinal — the brownout counter must stay 0.
	for id := uint32(4); id <= 5; id++ {
		sendFrame(t, conn, &airproto.Frame{ID: id, Data: symbols(id)})
		nack := readFrame(t, conn)
		if !nack.IsNack() || nack.Code != airproto.StatusDegraded || nack.ID != id {
			t.Fatalf("queue-full request %d answered with kind=%d code=%d", id, nack.Kind, nack.Code)
		}
	}
	if got := srv.shed.Load(); got != 2 {
		t.Fatalf("shed %d after 2 queue-full rejections", got)
	}
	if got := srv.brownout.Load(); got != 0 {
		t.Fatalf("brownout %d before any admission shedding", got)
	}

	// Control plane is pre-admission AND pre-queue: a stats fetch answers
	// even with the queue full and the worker pinned.
	sendFrame(t, conn, &airproto.Frame{Kind: airproto.KindStats, ID: 90})
	stats := readFrame(t, conn)
	if stats.Kind != airproto.KindStats || len(stats.Data) < airproto.StatsVectorLen {
		t.Fatalf("stats under full queue answered with kind=%d", stats.Kind)
	}
	if got := int64(real(stats.Data[airproto.StatShed])); got != 2 {
		t.Fatalf("StatShed reports %d, want 2", got)
	}

	// Let the deadline budgets die, then release the worker. Request 1 (no
	// deadline) completes; requests 2 and 3 expire at dequeue with a
	// non-negative lateness, spending zero inference on them.
	time.Sleep(30 * time.Millisecond)
	close(gate)
	got := map[uint32]*airproto.Frame{}
	for i := 0; i < 3; i++ {
		f := readFrame(t, conn)
		got[f.ID] = f
	}
	if f := got[1]; f == nil || f.IsNack() || len(f.Data) != d.Classes() {
		t.Fatalf("undeadlined request answered with %+v", got[1])
	}
	for id := uint32(2); id <= 3; id++ {
		f := got[id]
		if f == nil || !f.IsNack() || f.Code != airproto.StatusExpired {
			t.Fatalf("expired request %d answered with %+v", id, f)
		}
		if f.Label < 0 {
			t.Fatalf("expired request %d reports negative lateness %d", id, f.Label)
		}
	}
	if got := srv.expired.Load(); got != 2 {
		t.Fatalf("expired %d after 2 dead-budget dequeues", got)
	}
	waitFor(t, "queue depth gauge to drain", func() bool { return srv.inflight.Load() == 0 })

	// Brownout at the 95% ceiling: data frames mostly shed with an explicit
	// RetryAfter hint, but NOTHING on the control plane ever does — stats
	// and fleet heartbeats answer through the deepest brownout.
	ac.SetFraction(1) // clamps to the 95% ceiling
	var retryAfters, answered int
	for id := uint32(100); retryAfters < 10; id++ {
		if id >= 400 {
			t.Fatalf("95%% brownout shed only %d of %d requests", retryAfters, id-100)
		}
		sendFrame(t, conn, &airproto.Frame{ID: id, Data: symbols(id)})
		f := readFrame(t, conn)
		switch {
		case f.IsNack() && f.Code == airproto.StatusRetryAfter:
			retryAfters++
			if f.RetryAfterHint() <= 0 {
				t.Fatalf("RetryAfter NACK %d carries no hint (label %d)", f.ID, f.Label)
			}
		case !f.IsNack():
			answered++ // the always-admitted trickle
		default:
			t.Fatalf("brownout answered request %d with status %d", f.ID, f.Code)
		}
	}
	t.Logf("brownout: %d RetryAfter NACKs, %d admitted", retryAfters, answered)
	if got := srv.brownout.Load(); got != int64(retryAfters) {
		t.Fatalf("brownout counter %d, %d RetryAfter NACKs on the wire", got, retryAfters)
	}
	if got := srv.shed.Load(); got != int64(retryAfters)+2 {
		t.Fatalf("shed counter %d, want brownout %d + queue-full 2", got, retryAfters)
	}
	sendFrame(t, conn, &airproto.Frame{Kind: airproto.KindStats, ID: 91})
	stats = readFrame(t, conn)
	if stats.Kind != airproto.KindStats {
		t.Fatalf("stats during brownout answered with kind=%d code=%d", stats.Kind, stats.Code)
	}
	hb, err := airproto.Heartbeat(7).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(hb); err != nil {
		t.Fatal(err)
	}
	if f := readFrame(t, conn); f.Kind != airproto.KindHeartbeat {
		t.Fatalf("heartbeat during brownout answered with kind=%d", f.Kind)
	}

	// Snap open: clients see data again, and the obs mirrors agree with the
	// per-server atomics — the monitor the chaos gate and the sidecar read.
	ac.SetFraction(0)
	sendFrame(t, conn, &airproto.Frame{ID: 500, Data: symbols(500)})
	if f := readFrame(t, conn); f.IsNack() {
		t.Fatalf("request after snap-open NACKed with status %d", f.Code)
	}
	if dv := shedCount.Value() - shed0; dv != srv.shed.Load() {
		t.Fatalf("serve.shed advanced %d, atomic %d", dv, srv.shed.Load())
	}
	if dv := brownoutShedCount.Value() - brown0; dv != srv.brownout.Load() {
		t.Fatalf("serve.brownout_shed advanced %d, atomic %d", dv, srv.brownout.Load())
	}
	if dv := expiredCount.Value() - exp0; dv != srv.expired.Load() {
		t.Fatalf("serve.expired advanced %d, atomic %d", dv, srv.expired.Load())
	}
}

// TestAdmissionFeedbackLoop drives the p99 → AIMD loop for real: with obs
// armed and an unreachable SLO, serving slow-looking traffic must push the
// controller's shed fraction above zero without any manual SetFraction —
// the live-histogram wiring, not the controller math (admission's own tests
// cover that).
func TestAdmissionFeedbackLoop(t *testing.T) {
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)

	d := testDeployment(t, 11)
	ac := admission.New(time.Nanosecond) // every real request is over-SLO
	srv := newAirServer(serverConfig{
		deployment: d,
		workers:    2,
		queue:      64,
		admit:      ac,
		admitEvery: 2 * time.Millisecond,
		sessionSrc: rng.New(99),
		logf:       t.Logf,
	})
	addr, shutdown := startServer(t, srv)
	defer shutdown()
	conn := dialServer(t, addr)

	deadline := time.Now().Add(10 * time.Second)
	for id := uint32(1); ac.Fraction() == 0; id++ {
		if time.Now().After(deadline) {
			t.Fatal("feedback loop never engaged the brownout")
		}
		req := &airproto.Frame{ID: id, Data: testSymbols(d.InputLen(), uint64(id))}
		sendFrame(t, conn, req)
		readFrame(t, conn) // data or RetryAfter — either feeds the histogram's tail
	}
	t.Logf("brownout engaged at fraction %.4f", ac.Fraction())
}
