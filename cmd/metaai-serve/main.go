// Command metaai-serve runs the MetaAI "air" as a long-lived UDP service:
// it trains and deploys a pipeline once, then answers symbol frames with
// accumulator frames (package airproto), emulating the
// metasurface-augmented channel for any number of sensor clients. A -probe
// mode acts as a one-shot client for smoke testing a running server.
//
//	metaai-serve -dataset mnist -addr 127.0.0.1:9530 -workers 4
//	metaai-serve -dataset mnist -fault-rate 0.3 -self-heal
//	metaai-serve -dataset mnist -metrics-addr 127.0.0.1:9531
//	metaai-serve -probe 127.0.0.1:9530 -dataset mnist -timeout 5s -stats 50
//
// The server computes during "propagation"; whoever receives the response
// holds only per-class accumulators, never the sensor's raw data.
//
// Requests are handled concurrently: each worker goroutine owns one
// ota.Session over a shared immutable deployment, resolved per request
// from an atomic pointer. -fault-rate injects the faults.Mix fault load
// (stuck atoms, shift-register glitches, erasures, bursts, coherence
// collapse) into the emulated hardware; -self-heal arms a health monitor
// that watches the fleet's decision margins and, on degradation, re-solves
// the schedule around the stuck atoms and hot-swaps the deployment with
// zero request loss. Malformed or mis-sized frames and shed load are
// answered with explicit airproto NACKs instead of silence.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	metaai "repro"

	"repro/internal/faults"
	"repro/internal/mobility"
	"repro/internal/obs"
	"repro/internal/rng"
)

func main() {
	var (
		ds        = flag.String("dataset", "mnist", "dataset: "+strings.Join(metaai.Datasets(), ", "))
		addr      = flag.String("addr", "127.0.0.1:9530", "UDP listen address")
		seed      = flag.Uint64("seed", 1, "random seed")
		probe     = flag.String("probe", "", "act as a client: send one test sample to this address and exit")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent inference sessions (min 1)")
		timeout   = flag.Duration("timeout", 5*time.Second, "probe per-attempt response timeout")
		faultRate = flag.Float64("fault-rate", 0, "inject the faults.Mix fault load at this severity in [0,1]")
		selfHeal  = flag.Bool("self-heal", false, "monitor decision margins and hot-swap a re-solved deployment on degradation")
		healFrac  = flag.Float64("heal-frac", 0.5, "degradation threshold as a fraction of the healthy mean margin")
		healWin   = flag.Int("heal-window", 32, "margin observations averaged per health decision")
		healEvery = flag.Duration("heal-every", 250*time.Millisecond, "health supervisor polling period")
		metrics   = flag.String("metrics-addr", "", "serve the observability sidecar (metrics, expvar, pprof) on this HTTP address and enable latency timing")
		stats     = flag.Int("stats", 0, "probe: after the classification, send this many timed requests and report latency percentiles")
	)
	flag.Parse()

	if *metrics != "" {
		// Timing histograms are gated behind obs; the sidecar turns them on.
		obs.SetEnabled(true)
		go func() {
			log.Printf("observability sidecar on http://%s (metrics, expvar, pprof)", *metrics)
			if err := http.ListenAndServe(*metrics, metricsMux()); err != nil {
				log.Printf("metrics sidecar: %v", err)
			}
		}()
	}

	if *probe != "" {
		if err := runProbe(*probe, *ds, *seed, *timeout, *stats); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := runServer(*addr, *ds, *seed, *workers, *faultRate, *selfHeal, *healFrac, *healWin, *healEvery); err != nil {
		log.Fatal(err)
	}
}

func runServer(addr, ds string, seed uint64, workers int, faultRate float64, selfHeal bool, healFrac float64, healWin int, healEvery time.Duration) error {
	log.Printf("training %s pipeline and solving MTS schedules...", ds)
	cfg := metaai.DefaultConfig(ds)
	cfg.Seed = seed
	pipe, err := metaai.Run(cfg)
	if err != nil {
		return err
	}
	log.Printf("deployed: %d classes, U=%d symbols, sim %.1f%%, air %.1f%%",
		pipe.Train.Classes, pipe.Train.U, 100*pipe.SimAccuracy(), 100*pipe.AirAccuracy())

	serveCfg := serverConfig{
		deployment: pipe.Deployment(),
		workers:    workers,
		healEvery:  healEvery,
		sessionSrc: rng.New(seed ^ 0x5e55),
		logf:       log.Printf,
	}
	if faultRate > 0 {
		inj, err := faults.New(pipe.Deployment(), faults.Mix(faultRate), rng.New(seed^0xfa017))
		if err != nil {
			return err
		}
		serveCfg.injector = inj
		serveCfg.deployment = inj.Deployment()
		log.Printf("fault injection armed at rate %.2f: %d stuck atoms, residual error %.4f",
			faultRate, len(inj.StuckAtoms()), inj.ResidualError())
	}
	if selfHeal {
		// Calibrate the degradation threshold against the HEALTHY
		// deployment's margins (the bound default session), before any
		// injected damage.
		probes := pipe.Test.X
		if len(probes) > 64 {
			probes = probes[:64]
		}
		serveCfg.monitor = mobility.CalibrateMonitor(pipe.System, probes, healFrac, healWin)
		log.Printf("self-healing armed: margin threshold %.4f over a %d-readout window",
			serveCfg.monitor.Threshold(), healWin)
	}
	srv := newAirServer(serveCfg)

	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	log.Printf("air service listening on %s with %d workers (ctrl-c to stop)", conn.LocalAddr(), srv.cfg.workers)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		conn.Close() // unblock the read loop
	}()

	err = srv.serve(conn)
	if ctx.Err() != nil {
		log.Printf("shutting down after %d transmissions (%d healed swaps, %d shed)",
			srv.served.Load(), srv.swaps.Load(), srv.shed.Load())
		return nil
	}
	return err
}
