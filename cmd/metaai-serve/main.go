// Command metaai-serve runs the MetaAI "air" as a long-lived UDP service:
// it trains and deploys a pipeline once, then answers symbol frames with
// accumulator frames (package airproto), emulating the
// metasurface-augmented channel for any number of sensor clients. A -probe
// mode acts as a one-shot client for smoke testing a running server.
//
//	metaai-serve -dataset mnist -addr 127.0.0.1:9530
//	metaai-serve -probe 127.0.0.1:9530 -dataset mnist
//
// The server computes during "propagation"; whoever receives the response
// holds only per-class accumulators, never the sensor's raw data.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	metaai "repro"

	"repro/internal/airproto"
	"repro/internal/dataset"
	"repro/internal/nn"
)

func main() {
	var (
		ds    = flag.String("dataset", "mnist", "dataset: "+strings.Join(metaai.Datasets(), ", "))
		addr  = flag.String("addr", "127.0.0.1:9530", "UDP listen address")
		seed  = flag.Uint64("seed", 1, "random seed")
		probe = flag.String("probe", "", "act as a client: send one test sample to this address and exit")
	)
	flag.Parse()

	if *probe != "" {
		if err := runProbe(*probe, *ds, *seed); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := runServer(*addr, *ds, *seed); err != nil {
		log.Fatal(err)
	}
}

func runServer(addr, ds string, seed uint64) error {
	log.Printf("training %s pipeline and solving MTS schedules...", ds)
	cfg := metaai.DefaultConfig(ds)
	cfg.Seed = seed
	pipe, err := metaai.Run(cfg)
	if err != nil {
		return err
	}
	log.Printf("deployed: %d classes, U=%d symbols, sim %.1f%%, air %.1f%%",
		pipe.Train.Classes, pipe.Train.U, 100*pipe.SimAccuracy(), 100*pipe.AirAccuracy())

	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	log.Printf("air service listening on %s (ctrl-c to stop)", conn.LocalAddr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		conn.Close() // unblock the read loop
	}()

	// The deployed System mutates its rng on every call: serialize access.
	var mu sync.Mutex
	served := 0
	buf := make([]byte, 65535)
	for {
		n, from, err := conn.ReadFromUDP(buf)
		if err != nil {
			if ctx.Err() != nil {
				log.Printf("shutting down after %d transmissions", served)
				return nil
			}
			return err
		}
		frame, err := airproto.Unmarshal(buf[:n])
		if err != nil {
			log.Printf("bad frame from %s: %v", from, err)
			continue
		}
		if len(frame.Data) != pipe.Train.U {
			log.Printf("frame %d from %s: %d symbols, deployed for U=%d", frame.ID, from, len(frame.Data), pipe.Train.U)
			continue
		}
		mu.Lock()
		acc := pipe.System.Accumulate(frame.Data)
		mu.Unlock()
		resp := &airproto.Frame{ID: frame.ID, Label: frame.Label, Data: acc}
		out, err := resp.Marshal()
		if err != nil {
			log.Printf("frame %d: %v", frame.ID, err)
			continue
		}
		if _, err := conn.WriteToUDP(out, from); err != nil {
			log.Printf("reply to %s: %v", from, err)
			continue
		}
		served++
		if served%50 == 0 {
			log.Printf("served %d transmissions", served)
		}
	}
}

func runProbe(addr, ds string, seed uint64) error {
	cfg := metaai.DefaultConfig(ds)
	cfg.Seed = seed
	data := dataset.MustLoad(ds, cfg.Scale, cfg.Seed)
	sample := data.Test[0]
	// Encode with the same pipeline encoder the server deployed.
	enc := nn.Encoder{Scheme: cfg.Scheme}
	symbols := enc.Encode(sample.X)

	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	req := &airproto.Frame{ID: 1, Label: int32(sample.Label), Data: symbols}
	out, err := req.Marshal()
	if err != nil {
		return err
	}
	if _, err := conn.Write(out); err != nil {
		return err
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 65535)
	n, err := conn.Read(buf)
	if err != nil {
		return fmt.Errorf("no response from %s: %w", addr, err)
	}
	resp, err := airproto.Unmarshal(buf[:n])
	if err != nil {
		return err
	}
	best, arg := -1.0, 0
	for r, v := range resp.Data {
		m := real(v)*real(v) + imag(v)*imag(v)
		if m > best {
			best, arg = m, r
		}
	}
	fmt.Printf("probe: sample label %d classified as %d over the air\n", sample.Label, arg)
	return nil
}
