// Command metaai-serve runs the MetaAI "air" as a long-lived UDP service:
// it trains and deploys a pipeline once, then answers symbol frames with
// accumulator frames (package airproto), emulating the
// metasurface-augmented channel for any number of sensor clients. A -probe
// mode acts as a one-shot client for smoke testing a running server.
//
//	metaai-serve -dataset mnist -addr 127.0.0.1:9530 -workers 4
//	metaai-serve -probe 127.0.0.1:9530 -dataset mnist -timeout 5s
//
// The server computes during "propagation"; whoever receives the response
// holds only per-class accumulators, never the sensor's raw data.
//
// Requests are handled concurrently: the deployment is immutable and shared,
// and each worker goroutine owns one ota.Session carrying its private
// channel-noise stream, so no lock sits on the inference path. In-flight
// work is bounded by the request queue; when it is full the read loop blocks,
// shedding load to the kernel's UDP buffer.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	metaai "repro"

	"repro/internal/airproto"
	"repro/internal/dataset"
	"repro/internal/nn"
)

func main() {
	var (
		ds      = flag.String("dataset", "mnist", "dataset: "+strings.Join(metaai.Datasets(), ", "))
		addr    = flag.String("addr", "127.0.0.1:9530", "UDP listen address")
		seed    = flag.Uint64("seed", 1, "random seed")
		probe   = flag.String("probe", "", "act as a client: send one test sample to this address and exit")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent inference sessions (min 1)")
		timeout = flag.Duration("timeout", 5*time.Second, "probe response timeout (one retry on expiry)")
	)
	flag.Parse()

	if *probe != "" {
		if err := runProbe(*probe, *ds, *seed, *timeout); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := runServer(*addr, *ds, *seed, *workers); err != nil {
		log.Fatal(err)
	}
}

// request is one validated inbound frame awaiting inference.
type request struct {
	frame *airproto.Frame
	from  *net.UDPAddr
}

func runServer(addr, ds string, seed uint64, workers int) error {
	if workers < 1 {
		workers = 1
	}
	log.Printf("training %s pipeline and solving MTS schedules...", ds)
	cfg := metaai.DefaultConfig(ds)
	cfg.Seed = seed
	pipe, err := metaai.Run(cfg)
	if err != nil {
		return err
	}
	log.Printf("deployed: %d classes, U=%d symbols, sim %.1f%%, air %.1f%%",
		pipe.Train.Classes, pipe.Train.U, 100*pipe.SimAccuracy(), 100*pipe.AirAccuracy())

	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	log.Printf("air service listening on %s with %d workers (ctrl-c to stop)", conn.LocalAddr(), workers)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		conn.Close() // unblock the read loop
	}()

	// One independent session per worker over the shared immutable
	// deployment; each worker consumes only its own random stream, so the
	// fleet needs no locking and stays reproducible for a fixed seed.
	sessions := pipe.Sessions(workers)
	var served atomic.Int64
	reqs := make(chan request, workers*4)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		sess := sessions[w]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range reqs {
				acc := sess.Accumulate(r.frame.Data)
				resp := &airproto.Frame{ID: r.frame.ID, Label: r.frame.Label, Data: acc}
				out, err := resp.Marshal()
				if err != nil {
					log.Printf("frame %d: %v", r.frame.ID, err)
					continue
				}
				// UDPConn writes are goroutine-safe; replies interleave freely.
				if _, err := conn.WriteToUDP(out, r.from); err != nil {
					log.Printf("reply to %s: %v", r.from, err)
					continue
				}
				if n := served.Add(1); n%50 == 0 {
					log.Printf("served %d transmissions", n)
				}
			}
		}()
	}

	// Read buffers are pooled per request: airproto.Unmarshal copies the
	// symbol payload out, so a buffer returns to the pool as soon as the
	// frame is parsed.
	bufs := sync.Pool{New: func() interface{} { return make([]byte, 65535) }}
	for {
		buf := bufs.Get().([]byte)
		n, from, err := conn.ReadFromUDP(buf)
		if err != nil {
			bufs.Put(buf) //nolint:staticcheck // fixed-size buffer
			close(reqs)   // drain: let in-flight requests finish
			wg.Wait()
			if ctx.Err() != nil {
				log.Printf("shutting down after %d transmissions", served.Load())
				return nil
			}
			return err
		}
		frame, err := airproto.Unmarshal(buf[:n])
		bufs.Put(buf) //nolint:staticcheck // fixed-size buffer
		if err != nil {
			log.Printf("bad frame from %s: %v", from, err)
			continue
		}
		if len(frame.Data) != pipe.Train.U {
			log.Printf("frame %d from %s: %d symbols, deployed for U=%d", frame.ID, from, len(frame.Data), pipe.Train.U)
			continue
		}
		reqs <- request{frame: frame, from: from}
	}
}

func runProbe(addr, ds string, seed uint64, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	cfg := metaai.DefaultConfig(ds)
	cfg.Seed = seed
	data := dataset.MustLoad(ds, cfg.Scale, cfg.Seed)
	sample := data.Test[0]
	// Encode with the same pipeline encoder the server deployed.
	enc := nn.Encoder{Scheme: cfg.Scheme}
	symbols := enc.Encode(sample.X)

	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	req := &airproto.Frame{ID: 1, Label: int32(sample.Label), Data: symbols}
	out, err := req.Marshal()
	if err != nil {
		return err
	}
	// UDP drops are expected; retry once after a timeout before giving up.
	var resp *airproto.Frame
	for attempt := 0; attempt < 2; attempt++ {
		if _, err = conn.Write(out); err != nil {
			return err
		}
		conn.SetReadDeadline(time.Now().Add(timeout))
		buf := make([]byte, 65535)
		var n int
		n, err = conn.Read(buf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() && attempt == 0 {
				log.Printf("probe: no response within %v, retrying once", timeout)
				continue
			}
			return fmt.Errorf("no response from %s: %w", addr, err)
		}
		resp, err = airproto.Unmarshal(buf[:n])
		if err != nil {
			return err
		}
		break
	}
	if resp == nil {
		return fmt.Errorf("no response from %s", addr)
	}
	best, arg := -1.0, 0
	for r, v := range resp.Data {
		m := real(v)*real(v) + imag(v)*imag(v)
		if m > best {
			best, arg = m, r
		}
	}
	fmt.Printf("probe: sample label %d classified as %d over the air\n", sample.Label, arg)
	return nil
}
