// Command metaai-serve runs the MetaAI "air" as a long-lived UDP service:
// it trains and deploys a pipeline once, then answers symbol frames with
// accumulator frames (package airproto), emulating the
// metasurface-augmented channel for any number of sensor clients. A -probe
// mode acts as a one-shot client for smoke testing a running server.
//
//	metaai-serve -dataset mnist -addr 127.0.0.1:9530 -workers 4
//	metaai-serve -dataset mnist -layers 2
//	metaai-serve -dataset mnist -fault-rate 0.3 -self-heal
//	metaai-serve -dataset mnist -self-heal -state-dir /var/lib/metaai
//	metaai-serve -dataset mnist -metrics-addr 127.0.0.1:9531
//	metaai-serve -probe 127.0.0.1:9530 -dataset mnist -timeout 5s -stats 50
//
// The server computes during "propagation"; whoever receives the response
// holds only per-class accumulators, never the sensor's raw data.
//
// Requests are handled concurrently: each worker goroutine owns one
// ota.Session over a shared immutable deployment, resolved per request
// from an atomic pointer. -fault-rate injects the faults.Mix fault load
// (stuck atoms, shift-register glitches, erasures, bursts, coherence
// collapse) into the emulated hardware; -self-heal arms a health monitor
// that watches the fleet's decision margins and, on degradation, re-solves
// the schedule around the stuck atoms and hot-swaps the deployment with
// zero request loss. Heal candidates are canary-validated against the
// healthy deployment's own predictions on held-out probes before they are
// published, and a published heal that regresses the observed margins is
// automatically rolled back to the previous epoch.
//
// -state-dir makes the serving state durable: every published epoch (the
// initial deployment, each heal, each rollback) is journaled as a sealed
// checkpoint, and on restart the server recovers the newest valid epoch —
// skipping corrupt or truncated entries — and resumes serving with zero
// re-training and zero schedule re-solving. Malformed or mis-sized frames
// and shed load are answered with explicit airproto NACKs instead of
// silence.
package main

import (
	"context"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"sync"
	"syscall"
	"time"

	metaai "repro"

	"repro/internal/airproto"
	"repro/internal/checkpoint"
	"repro/internal/dataset"
	"repro/internal/admission"
	"repro/internal/faults"
	"repro/internal/mobility"
	"repro/internal/netchaos"
	"repro/internal/nn"
	"repro/internal/obs"
	"repro/internal/obs/events"
	"repro/internal/obs/trace"
	"repro/internal/rng"
)

// serverOptions bundles the serving knobs main parses from flags.
type serverOptions struct {
	ds           string
	seed         uint64
	layers       int
	workers      int
	batch        int
	faultRate    float64
	sabotage     float64
	selfHeal     bool
	healFrac     float64
	healWin      int
	healEvery    time.Duration
	canaryFrac   float64
	rollbackFrac float64
	stateDir     string
	joinAddr     string
	// sloP99, when positive, arms adaptive admission control: a feedback
	// loop watches the live p99 request latency against this target and
	// browns out a rising fraction of data traffic while it is breached.
	sloP99 time.Duration
	// chaosRate/chaosSeed, when chaosRate is positive, wrap the serving
	// socket with the seeded netchaos.Mix fault load on both directions.
	chaosRate float64
	chaosSeed uint64
}

// joinEvery is the cadence of a replica's membership announcements to its
// fleet router (-join). Re-announcing is cheap and idempotent: it resurrects
// the replica after an eviction and re-registers it after a router restart.
const joinEvery = 2 * time.Second

func main() {
	var (
		ds        = flag.String("dataset", "mnist", "dataset: "+strings.Join(metaai.Datasets(), ", "))
		addr      = flag.String("addr", "127.0.0.1:9530", "UDP listen address")
		seed      = flag.Uint64("seed", 1, "random seed")
		layers    = flag.Int("layers", 1, "stacked metasurface layers for a cold start (1 = classic single surface; a recovered journal epoch keeps its own layer count)")
		probe     = flag.String("probe", "", "act as a client: send one test sample to this address and exit")
		workers   = flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent inference sessions (min 1)")
		batch     = flag.Int("batch", 1, "max pending requests one worker drains and accumulates per wakeup (min 1; 1 = classic per-request path, outputs bit-identical at any setting)")
		timeout   = flag.Duration("timeout", 5*time.Second, "probe per-attempt response timeout")
		budget    = flag.Duration("budget", 0, "probe overall deadline per exchange across all retry attempts and backoffs (0 disables)")
		joinAddr  = flag.String("join", "", "announce this replica to a metaai-fleet router at this address and accept replicated epochs")
		faultRate = flag.Float64("fault-rate", 0, "inject the faults.Mix fault load at this severity in [0,1]")
		selfHeal  = flag.Bool("self-heal", false, "monitor decision margins and hot-swap a re-solved deployment on degradation")
		healFrac  = flag.Float64("heal-frac", 0.5, "degradation threshold as a fraction of the healthy mean margin")
		healWin   = flag.Int("heal-window", 32, "margin observations averaged per health decision")
		healEvery = flag.Duration("heal-every", 250*time.Millisecond, "health supervisor polling period")
		canary    = flag.Float64("canary-frac", 0.8, "minimum prediction agreement with the healthy deployment a heal candidate needs on the held-out probes")
		rollback  = flag.Float64("rollback-frac", 0.75, "roll a published heal back when the margin mean falls below this fraction of the pre-heal level (0 disables)")
		stateDir  = flag.String("state-dir", "", "journal every published epoch here and recover the newest valid one on restart")
		sloP99    = flag.Duration("slo-p99", 0, "p99 latency target; when breached, admission control browns out a rising fraction of data traffic with RetryAfter NACKs (0 disables; implies latency timing)")
		deadlineF = flag.Duration("deadline", 0, "probe: stamp this deadline budget on every data request; the server drops work whose budget expires in queue with StatusExpired (0 disables)")
		chaosRate = flag.Float64("chaos-rate", 0, "wrap the UDP socket (server or probe) with the seeded netchaos.Mix packet-fault load at this severity in [0,1]")
		chaosSeed = flag.Uint64("chaos-seed", 1, "seed for -chaos-rate packet fates (same seed, same fates)")
		sabotage  = flag.Float64("sabotage-heal", 0, "deliberately corrupt this fraction of every heal candidate's schedule (exercises the canary gate and rollback)")
		metrics   = flag.String("metrics-addr", "", "serve the observability sidecar (metrics, expvar, pprof, traces, events) on this HTTP address and enable latency timing + tracing")
		stats     = flag.Int("stats", 0, "probe: after the classification, send this many timed requests and report latency percentiles")
		jsonOut   = flag.Bool("json", false, "probe: print the -stats report as JSON instead of text")
		traceID   = flag.String("trace", "", "probe: fetch this retained trace (16-hex-digit ID) from the server over the air and print its Chrome JSON")
		traceRing = flag.Int("trace-ring", 256, "retained-trace ring size (with -metrics-addr)")
		traceSamp = flag.Float64("trace-sample", 0.01, "tail-sample retention probability in [0,1] for unflagged traces; slow/NACKed/shed/event-overlapping traces are always retained")
	)
	flag.Parse()

	var sidecar *http.Server
	if *metrics != "" {
		// Timing histograms, the trace ring, and the event journal are all
		// gated behind the sidecar: without -metrics-addr the serve path
		// runs span-free and allocation-free.
		obs.SetEnabled(true)
		trace.Default().Enable(*traceRing, *traceSamp)
		events.Default().Enable(512, trace.Default())
		sidecar = &http.Server{Addr: *metrics, Handler: metricsMux()}
		go func() {
			log.Printf("observability sidecar on http://%s (metrics, expvar, pprof, traces, events)", *metrics)
			if err := sidecar.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("metrics sidecar: %v", err)
			}
		}()
	}

	if *probe != "" {
		if err := runProbe(*probe, probeOptions{
			ds: *ds, seed: *seed, timeout: *timeout, budget: *budget,
			deadline: *deadlineF, chaosRate: *chaosRate, chaosSeed: *chaosSeed,
			stats: *stats, jsonOut: *jsonOut, traceID: *traceID,
		}); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *sloP99 > 0 {
		// The admission controller's feedback input is the live p99 out of
		// the request-latency histogram; timing must be on even without the
		// sidecar.
		obs.SetEnabled(true)
	}
	opt := serverOptions{
		ds:           *ds,
		seed:         *seed,
		layers:       *layers,
		workers:      *workers,
		batch:        *batch,
		faultRate:    *faultRate,
		sabotage:     *sabotage,
		selfHeal:     *selfHeal,
		healFrac:     *healFrac,
		healWin:      *healWin,
		healEvery:    *healEvery,
		canaryFrac:   *canary,
		rollbackFrac: *rollback,
		stateDir:     *stateDir,
		joinAddr:     *joinAddr,
		sloP99:       *sloP99,
		chaosRate:    *chaosRate,
		chaosSeed:    *chaosSeed,
	}
	if err := runServer(*addr, opt, sidecar); err != nil {
		log.Fatal(err)
	}
}

// probeSets splits the encoded test inputs into the monitor-calibration
// batch and the held-out canary batch. The two must not overlap: the canary
// judges a candidate on inputs the health monitor never consumed.
func probeSets(x [][]complex128) (monitor, canary [][]complex128) {
	monitor = x
	if len(monitor) > 64 {
		monitor = monitor[:64]
	}
	if len(x) > 96 {
		canary = x[64:96]
	} else if len(x) > 64 {
		canary = x[64:]
	} else {
		canary = monitor // tiny set: reuse rather than gate on nothing
	}
	return monitor, canary
}

// buildServerConfig assembles the serving state. With a recoverable journal
// entry it restores the deployment bit-for-bit from disk — no training, no
// schedule solving; otherwise it trains and deploys a fresh pipeline (the
// cold start) whose first epoch seeds the journal.
func buildServerConfig(opt serverOptions) (serverConfig, *checkpoint.Journal, error) {
	serveCfg := serverConfig{
		workers:      opt.workers,
		batch:        opt.batch,
		healEvery:    opt.healEvery,
		canaryFrac:   opt.canaryFrac,
		canarySeed:   opt.seed ^ 0xca9a,
		rollbackFrac: opt.rollbackFrac,
		sessionSrc:   rng.New(opt.seed ^ 0x5e55),
		logf:         log.Printf,
	}
	if opt.sloP99 > 0 {
		serveCfg.admit = admission.New(opt.sloP99)
		log.Printf("adaptive admission control armed: p99 SLO %v (brownout sheds data traffic only; control-plane frames always admitted)", opt.sloP99)
	}

	var journal *checkpoint.Journal
	var recovered *checkpoint.Epoch
	if opt.stateDir != "" {
		var err error
		journal, err = checkpoint.OpenJournal(opt.stateDir)
		if err != nil {
			return serveCfg, nil, err
		}
		serveCfg.journal = journal
		recovered, err = recoverEpoch(journal, opt.ds)
		if err != nil {
			return serveCfg, nil, err
		}
	}

	cfg := metaai.DefaultConfig(opt.ds)
	cfg.Seed = opt.seed
	cfg.Layers = opt.layers

	if recovered != nil {
		// Warm start: the journal already holds the solved deployment.
		d, err := restoreDeployment(recovered)
		if err != nil {
			return serveCfg, nil, err
		}
		log.Printf("recovered epoch %d (%s) from %s: zero re-train, zero re-solve",
			recovered.Seq, recovered.Reason, journal.Dir())
		if n := d.Layers(); n > 1 {
			log.Printf("recovered deployment is a %d-layer stacked cascade", n)
			if opt.layers != n && opt.layers > 1 {
				log.Printf("-layers %d ignored: the journal epoch's layer count wins on recovery", opt.layers)
			}
		}
		events.Default().Emit(events.Recover, "serving state restored from journal",
			events.Num("epoch_seq", float64(recovered.Seq)),
			events.Str("reason", recovered.Reason))
		serveCfg.deployment = d
		serveCfg.reference = d
		serveCfg.initialReason = "recover"
		serveCfg.meta = recovered.Meta
		serveCfg.meta.FaultRate = opt.faultRate

		// The encoded test set rebuilds cheaply (load + modulate, no
		// training) and supplies the monitor and canary probes.
		raw, err := dataset.Load(cfg.Dataset, cfg.Scale, cfg.Seed)
		if err != nil {
			return serveCfg, nil, err
		}
		test := nn.EncodeSet(raw.Test, raw.Classes, nn.Encoder{Scheme: cfg.Scheme})
		monProbes, canaryProbes := probeSets(test.X)
		serveCfg.canaryProbes = canaryProbes

		if opt.faultRate > 0 {
			// The recovered responses already carry whatever static damage
			// was baked in when the epoch was journaled, so only the
			// DYNAMIC fault load re-arms; re-sampling stuck atoms on top of
			// a healed deployment would damage it twice.
			rates := faults.Mix(opt.faultRate)
			rates.StuckAtomFrac = 0
			inj, err := faults.New(d, rates, rng.New(opt.seed^0xfa017))
			if err != nil {
				return serveCfg, nil, err
			}
			inj.SabotageHeal(opt.sabotage)
			serveCfg.injector = inj
			serveCfg.deployment = inj.Deployment()
			log.Printf("dynamic fault injection re-armed at rate %.2f (static damage restored from the journal)", opt.faultRate)
		}
		if opt.selfHeal {
			if th := recovered.Th; th.Window > 0 {
				serveCfg.monitor = mobility.NewMonitor(th.Threshold, th.Window)
				log.Printf("self-healing re-armed from journaled thresholds: margin %.4f over a %d-readout window",
					th.Threshold, th.Window)
			} else {
				serveCfg.monitor = mobility.CalibrateMonitor(
					d.SessionFromSeed(opt.seed^0x4ea1), monProbes, opt.healFrac, opt.healWin)
				log.Printf("self-healing re-armed: margin threshold %.4f over a %d-readout window",
					serveCfg.monitor.Threshold(), opt.healWin)
			}
		}
		return serveCfg, journal, nil
	}

	// Cold start: train, deploy, and let the first epoch seed the journal.
	log.Printf("training %s pipeline and solving MTS schedules...", opt.ds)
	pipe, err := metaai.Run(cfg)
	if err != nil {
		return serveCfg, nil, err
	}
	log.Printf("deployed: %d classes, U=%d symbols, sim %.1f%%, air %.1f%%",
		pipe.Train.Classes, pipe.Train.U, 100*pipe.SimAccuracy(), 100*pipe.AirAccuracy())
	if n := pipe.Deployment().Layers(); n > 1 {
		log.Printf("stacked cascade: %d layers, hop noise %.3f", n, pipe.Deployment().Options().HopNoise)
	}

	serveCfg.deployment = pipe.Deployment()
	serveCfg.reference = pipe.Deployment()
	serveCfg.meta = checkpoint.Meta{Dataset: opt.ds, Seed: opt.seed, FaultRate: opt.faultRate}
	if cfg.Sync == metaai.SyncCoarse || cfg.Sync == metaai.SyncCDFA {
		det := cfg.EffectiveDetector(pipe.Train.U)
		serveCfg.meta.DetShape, serveCfg.meta.DetScale = det.Shape, det.Scale
	}
	monProbes, canaryProbes := probeSets(pipe.Test.X)
	serveCfg.canaryProbes = canaryProbes

	if opt.faultRate > 0 {
		inj, err := faults.New(pipe.Deployment(), faults.Mix(opt.faultRate), rng.New(opt.seed^0xfa017))
		if err != nil {
			return serveCfg, nil, err
		}
		inj.SabotageHeal(opt.sabotage)
		serveCfg.injector = inj
		serveCfg.deployment = inj.Deployment()
		log.Printf("fault injection armed at rate %.2f: %d stuck atoms, residual error %.4f",
			opt.faultRate, len(inj.StuckAtoms()), inj.ResidualError())
	}
	if opt.selfHeal {
		// Calibrate the degradation threshold against the HEALTHY
		// deployment's margins (the bound default session), before any
		// injected damage.
		serveCfg.monitor = mobility.CalibrateMonitor(pipe.System, monProbes, opt.healFrac, opt.healWin)
		log.Printf("self-healing armed: margin threshold %.4f over a %d-readout window",
			serveCfg.monitor.Threshold(), opt.healWin)
	}
	return serveCfg, journal, nil
}

func runServer(addr string, opt serverOptions, sidecar *http.Server) error {
	serveCfg, journal, err := buildServerConfig(opt)
	if err != nil {
		return err
	}
	srv := newAirServer(serveCfg)
	if obs.Enabled() {
		// Piggyback this replica's metrics snapshot on fleet heartbeat
		// replies so the router can merge a fleet-wide view. Heartbeats are
		// frequent and cheap; snapshot encoding is neither, so the blob is
		// re-encoded at most twice a second and served from cache between.
		var snapMu sync.Mutex
		var snapAt time.Time
		var snapBlob []byte
		srv.fleetAgent.SetSnapshotSource(func() []byte {
			snapMu.Lock()
			defer snapMu.Unlock()
			if now := time.Now(); snapBlob == nil || now.Sub(snapAt) > 500*time.Millisecond {
				snapBlob = obs.EncodeSnapshot(obs.Default().Snapshot())
				snapAt = now
			}
			return snapBlob
		})
	}

	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	udpConn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return err
	}
	var conn netchaos.PacketConn = udpConn
	if opt.chaosRate > 0 {
		conn = netchaos.Wrap(udpConn, netchaos.Config{
			Seed:     opt.chaosSeed,
			Inbound:  netchaos.Mix(opt.chaosRate),
			Outbound: netchaos.Mix(opt.chaosRate),
		})
		log.Printf("chaos armed on the serving socket (mix severity %.2f, seed %d)", opt.chaosRate, opt.chaosSeed)
	}
	defer conn.Close()
	log.Printf("air service listening on %s with %d workers (ctrl-c to stop)", conn.LocalAddr(), srv.cfg.workers)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		conn.Close() // unblock the read loop; serve() then drains the workers
	}()

	if opt.joinAddr != "" {
		// Announce membership from the SERVING socket so the router learns
		// this replica's data-path address from the datagram's source. Writes
		// interleave safely with the read loop; the router's join replies come
		// back on conn and are consumed by the fleet agent.
		raddr, err := net.ResolveUDPAddr("udp", opt.joinAddr)
		if err != nil {
			return err
		}
		log.Printf("announcing to fleet router %s every %v", raddr, joinEvery)
		go func() {
			t := time.NewTicker(joinEvery)
			defer t.Stop()
			for id := uint32(1); ; id++ {
				fleetSeq, fleetNonce := srv.fleetAgent.FleetVersion()
				f := airproto.Join(id, fleetSeq, srv.epochSeq.Load(), fleetNonce)
				if out, err := f.Marshal(); err == nil {
					if _, err := conn.WriteToUDP(out, raddr); err != nil && ctx.Err() == nil {
						log.Printf("fleet join announce: %v", err)
					}
				}
				select {
				case <-ctx.Done():
					return
				case <-t.C:
				}
			}
		}()
	}

	if trace.Default().Enabled() {
		// The tail sampler's "slow" criterion tracks the LIVE p99 of the
		// request-latency histogram: refresh it periodically so "slow"
		// means slow relative to this deployment on this machine, not a
		// hard-coded constant.
		go func() {
			t := time.NewTicker(2 * time.Second)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					trace.Default().SetSlowThreshold(requestP99())
				}
			}
		}()
	}

	err = srv.serve(conn)

	// Clean-exit ordering: serve() has drained in-flight requests; flush
	// the journal, then take down the sidecar.
	var fl flusher
	if journal != nil {
		fl = journal
	}
	var sd shutdowner
	if sidecar != nil {
		sd = sidecar
	}
	closeStack(fl, sd, log.Printf)

	if ctx.Err() != nil {
		log.Printf("shutting down after %d transmissions (%d healed swaps, %d rollbacks, %d shed)",
			srv.served.Load(), srv.swaps.Load(), srv.rollbacks.Load(), srv.shed.Load())
		return nil
	}
	return err
}
