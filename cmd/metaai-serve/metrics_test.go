package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/airproto"
	"repro/internal/obs"
	"repro/internal/rng"
)

// TestMetricsSidecarReportsServing is the observability acceptance test:
// with instrumentation enabled, a served request load must show up in the
// sidecar — non-zero request-latency histogram counts, served/heal/swap
// counters, a drained queue gauge — and every sidecar endpoint must answer.
func TestMetricsSidecarReportsServing(t *testing.T) {
	obs.Default().Reset()
	obs.SetEnabled(true)
	defer obs.SetEnabled(false)

	d := testDeployment(t, 31)
	srv := newAirServer(serverConfig{deployment: d, workers: 2, sessionSrc: rng.New(9), logf: t.Logf})
	addr, shutdown := startServer(t, srv)
	defer shutdown()
	conn := dialServer(t, addr)

	const requests = 10
	for i := 1; i <= requests; i++ {
		req := &airproto.Frame{ID: uint32(i), Data: testSymbols(d.InputLen(), uint64(i))}
		resp, err := exchange(conn, req, 5*time.Second, 0, time.Millisecond, 3, rng.New(uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if resp.IsNack() {
			t.Fatalf("request %d NACKed with status %d", i, resp.Code)
		}
	}
	srv.heal()

	snap := obs.Default().Snapshot()
	if got := snap.Histograms["serve.request.seconds"].Count; got < requests {
		t.Fatalf("serve.request.seconds count = %d, want >= %d", got, requests)
	}
	if got := snap.Counters["serve.served"]; got < requests {
		t.Fatalf("serve.served = %d, want >= %d", got, requests)
	}
	if got := snap.Counters["serve.heals"]; got < 1 {
		t.Fatalf("serve.heals = %d, want >= 1", got)
	}
	if got := snap.Counters["serve.swaps"]; got < 1 {
		t.Fatalf("serve.swaps = %d, want >= 1", got)
	}
	if got := snap.Counters["ota.inferences"]; got < requests {
		t.Fatalf("ota.inferences = %d, want >= %d", got, requests)
	}
	if got := snap.Gauges["serve.queue.depth"]; got != 0 {
		t.Fatalf("serve.queue.depth = %v after the load drained, want 0", got)
	}

	mux := metricsMux()
	get := func(path string) *httptest.ResponseRecorder {
		t.Helper()
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s = %d, want 200", path, rec.Code)
		}
		return rec
	}
	text := get("/metrics").Body.String()
	for _, want := range []string{"serve.request.seconds", "serve.served", "serve.queue.depth"} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics missing %s:\n%s", want, text)
		}
	}
	var parsed obs.Snapshot
	if err := json.Unmarshal(get("/metrics.json").Body.Bytes(), &parsed); err != nil {
		t.Fatalf("/metrics.json does not parse: %v", err)
	}
	if parsed.Counters["serve.served"] < requests {
		t.Fatalf("/metrics.json serve.served = %d, want >= %d", parsed.Counters["serve.served"], requests)
	}
	if !strings.Contains(get("/debug/vars").Body.String(), "metaai") {
		t.Fatal("/debug/vars missing the metaai expvar")
	}
	get("/debug/pprof/")
}
