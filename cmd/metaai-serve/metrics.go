package main

import (
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/events"
	"repro/internal/obs/trace"
)

// Serving metrics, mirrored alongside the airServer's own atomics (tests
// assert exact per-server values on the atomics; the obs counters aggregate
// process-wide for the sidecar):
//
//	serve.request.seconds  per-request latency, enqueue to reply written
//	serve.queue.depth      in-flight requests queued for the worker fleet
//	serve.served           data frames answered
//	serve.shed             load-shedding NACKs (queue-full StatusDegraded
//	                       plus brownout StatusRetryAfter)
//	serve.brownout_shed    the brownout subset of serve.shed: admission-
//	                       control rejections with a RetryAfter hint
//	serve.expired          requests dropped at dequeue because their
//	                       deadline budget ran out (StatusExpired NACKs)
//	serve.admit_fraction   the admission controller's current shed fraction
//	                       in parts per million (gauge; 0 = fully open)
//	serve.nacked           bad-frame / wrong-length NACKs
//	serve.heals            heal() invocations (monitor-triggered or manual)
//	serve.swaps            epochs published after the first
//	serve.canary_rejects   heal candidates rejected by the canary gate
//	serve.rollbacks        published heals rolled back by the supervisor
var (
	reqSeconds        = obs.NewLatencyHistogram("serve.request.seconds")
	queueDepth        = obs.NewGauge("serve.queue.depth")
	servedCount       = obs.NewCounter("serve.served")
	shedCount         = obs.NewCounter("serve.shed")
	brownoutShedCount = obs.NewCounter("serve.brownout_shed")
	expiredCount      = obs.NewCounter("serve.expired")
	admitFraction     = obs.NewGauge("serve.admit_fraction")
	nackedCount       = obs.NewCounter("serve.nacked")
	healCount         = obs.NewCounter("serve.heals")
	swapCount         = obs.NewCounter("serve.swaps")
	canaryRejectCount = obs.NewCounter("serve.canary_rejects")
	rollbackCount     = obs.NewCounter("serve.rollbacks")
)

// Probe-side counters. The retry/backoff and stale-drain paths used to be
// invisible in snapshots — a probe that quietly burned its attempts or
// swallowed a stale NACK left no trace. Now every retry and every stale
// NACK drained off the socket counts:
//
//	probe.retries           exchange attempts beyond each request's first
//	probe.stale_nacks       stale NACK datagrams discarded by drainStale
//	probe.budget_exhausted  exchanges abandoned because the overall deadline
//	                        budget ran out (counted separately from the
//	                        per-attempt timeouts it subsumes)
var (
	probeRetries         = obs.NewCounter("probe.retries")
	probeStaleNacks      = obs.NewCounter("probe.stale_nacks")
	probeBudgetExhausted = obs.NewCounter("probe.budget_exhausted")
)

// requestP99 reads the live 99th-percentile request latency out of the obs
// histogram — the tail sampler's "slow" threshold. Zero (sampler treats
// nothing as slow on latency grounds) until requests have been observed.
func requestP99() time.Duration {
	h, ok := obs.Default().Snapshot().Histograms["serve.request.seconds"]
	if !ok {
		return 0
	}
	return time.Duration(h.Quantile(0.99) * float64(time.Second))
}

// metricsMux builds the observability sidecar: the obs snapshot in text and
// JSON, the expvar dump, and the full pprof suite.
func metricsMux() *http.ServeMux {
	obs.PublishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := obs.Default().Snapshot().WriteText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := obs.Default().Snapshot().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := trace.WriteList(w, trace.Default().List()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/trace/", func(w http.ResponseWriter, r *http.Request) {
		idHex := strings.TrimPrefix(r.URL.Path, "/trace/")
		id, err := trace.ParseID(idHex)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		tr, flags := trace.Default().Get(id)
		if tr == nil {
			http.Error(w, "trace not retained (sampled out, evicted, or never recorded)", http.StatusNotFound)
			return
		}
		// Chrome trace-event JSON: save the body and load it in
		// chrome://tracing or https://ui.perfetto.dev.
		w.Header().Set("Content-Type", "application/json")
		if err := trace.WriteJSON(w, tr, flags, trace.ExportOptions{}); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if err := events.Default().WriteNDJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "metaai-serve observability sidecar: /metrics /metrics.json /traces /trace/<id> /events /debug/vars /debug/pprof/")
	})
	return mux
}
