package main

import (
	"expvar"
	"fmt"
	"net/http"
	"net/http/pprof"

	"repro/internal/obs"
)

// Serving metrics, mirrored alongside the airServer's own atomics (tests
// assert exact per-server values on the atomics; the obs counters aggregate
// process-wide for the sidecar):
//
//	serve.request.seconds  per-request latency, enqueue to reply written
//	serve.queue.depth      in-flight requests queued for the worker fleet
//	serve.served           data frames answered
//	serve.shed             StatusDegraded NACKs (queue full)
//	serve.nacked           bad-frame / wrong-length NACKs
//	serve.heals            heal() invocations (monitor-triggered or manual)
//	serve.swaps            epochs published after the first
//	serve.canary_rejects   heal candidates rejected by the canary gate
//	serve.rollbacks        published heals rolled back by the supervisor
var (
	reqSeconds        = obs.NewLatencyHistogram("serve.request.seconds")
	queueDepth        = obs.NewGauge("serve.queue.depth")
	servedCount       = obs.NewCounter("serve.served")
	shedCount         = obs.NewCounter("serve.shed")
	nackedCount       = obs.NewCounter("serve.nacked")
	healCount         = obs.NewCounter("serve.heals")
	swapCount         = obs.NewCounter("serve.swaps")
	canaryRejectCount = obs.NewCounter("serve.canary_rejects")
	rollbackCount     = obs.NewCounter("serve.rollbacks")
)

// metricsMux builds the observability sidecar: the obs snapshot in text and
// JSON, the expvar dump, and the full pprof suite.
func metricsMux() *http.ServeMux {
	obs.PublishExpvar()
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := obs.Default().Snapshot().WriteText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := obs.Default().Snapshot().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "metaai-serve observability sidecar: /metrics /metrics.json /debug/vars /debug/pprof/")
	})
	return mux
}
