package main

import (
	"fmt"
	"math"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/airproto"
	"repro/internal/cplx"
	"repro/internal/faults"
	"repro/internal/mobility"
	"repro/internal/ota"
	"repro/internal/rng"
)

// testDeployment builds a small deployable random-weight system — 4 classes
// over 16 symbols — so server tests never pay for model training.
func testDeployment(t testing.TB, seed uint64) *ota.Deployment {
	t.Helper()
	src := rng.New(seed)
	w := cplx.NewMat(4, 16)
	wsrc := rng.New(7)
	for i := range w.Data {
		w.Data[i] = cplx.Expi(wsrc.Phase()) * complex(0.5+wsrc.Float64(), 0)
	}
	d, err := ota.NewDeployment(w, ota.NewOptions(src.Split()), src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func testSymbols(u int, seed uint64) []complex128 {
	src := rng.New(seed)
	x := make([]complex128, u)
	for i := range x {
		x[i] = cplx.Expi(src.Phase())
	}
	return x
}

// startServer runs an airServer on a loopback port and returns its address
// plus a shutdown func that stops it and waits for serve to return.
func startServer(t *testing.T, srv *airServer) (*net.UDPAddr, func()) {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.serve(conn) }()
	return conn.LocalAddr().(*net.UDPAddr), func() {
		conn.Close()
		<-done
	}
}

func dialServer(t *testing.T, addr *net.UDPAddr) *net.UDPConn {
	t.Helper()
	conn, err := net.DialUDP("udp", nil, addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func TestServeHotSwapZeroRequestLoss(t *testing.T) {
	// The degraded-mode acceptance test: a damaged deployment serves a
	// concurrent client load while the health monitor trips and the
	// supervisor hot-swaps in the healed deployment. Every single request
	// must receive a data-frame answer — zero loss across the swap. Run
	// under -race: the swap publishes whole epochs through an atomic
	// pointer while 4 workers keep serving.
	d := testDeployment(t, 11)
	inj, err := faults.New(d, faults.Rates{StuckAtomFrac: 0.3}, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	// A monitor with an unreachable threshold trips as soon as its window
	// fills, forcing the heal to race the client load deterministically.
	srv := newAirServer(serverConfig{
		deployment: inj.Deployment(),
		injector:   inj,
		monitor:    mobility.NewMonitor(math.MaxFloat64, 8),
		workers:    4,
		queue:      64,
		healEvery:  5 * time.Millisecond,
		sessionSrc: rng.New(99),
		logf:       t.Logf,
	})
	addr, shutdown := startServer(t, srv)
	defer shutdown()

	const clients, perClient = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		c := c
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.DialUDP("udp", nil, addr)
			if err != nil {
				errs <- err
				return
			}
			defer conn.Close()
			for i := 0; i < perClient; i++ {
				id := uint32(c*perClient + i + 1)
				req := &airproto.Frame{ID: id, Data: testSymbols(d.InputLen(), uint64(id))}
				out, _ := req.Marshal()
				if _, err := conn.Write(out); err != nil {
					errs <- err
					return
				}
				conn.SetReadDeadline(time.Now().Add(10 * time.Second))
				resp, err := readMatching(conn, id)
				if err != nil {
					errs <- fmt.Errorf("request %d lost: %w", id, err)
					return
				}
				if resp.IsNack() {
					errs <- fmt.Errorf("request %d NACKed with status %d", id, resp.Code)
					return
				}
				if len(resp.Data) != d.Classes() {
					errs <- fmt.Errorf("request %d: %d accumulators, want %d", id, len(resp.Data), d.Classes())
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := srv.served.Load(); got != clients*perClient {
		t.Fatalf("served %d data frames, want %d", got, clients*perClient)
	}
	if srv.shed.Load() != 0 {
		t.Fatalf("server shed %d requests under a within-queue load", srv.shed.Load())
	}
	// A fast client load can drain before the supervisor's next tick; the
	// monitor window stays full, so the heal is still guaranteed — wait for
	// it instead of racing it.
	deadline := time.Now().Add(10 * time.Second)
	for (!inj.Healed() || srv.swaps.Load() == 0) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !inj.Healed() {
		t.Fatal("health monitor never triggered the masked-atom heal")
	}
	if srv.swaps.Load() == 0 {
		t.Fatal("no epoch swap was published")
	}
}

func TestServeNacksMalformedAndWrongLength(t *testing.T) {
	d := testDeployment(t, 12)
	srv := newAirServer(serverConfig{deployment: d, workers: 1, sessionSrc: rng.New(99)})
	addr, shutdown := startServer(t, srv)
	defer shutdown()
	conn := dialServer(t, addr)

	// Garbage bytes: rejection must come back as a bad-frame NACK with the
	// unattributable ID 0, not silence.
	if _, err := conn.Write([]byte{0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err := readMatching(conn, 0)
	if err != nil {
		t.Fatalf("malformed frame got no NACK: %v", err)
	}
	if !resp.IsNack() || resp.Code != airproto.StatusBadFrame {
		t.Fatalf("malformed frame answered with %+v, want StatusBadFrame NACK", resp)
	}

	// Wrong symbol count: the NACK echoes the request ID and carries the
	// deployed U in the Label field.
	req := &airproto.Frame{ID: 77, Data: testSymbols(d.InputLen()+3, 5)}
	out, _ := req.Marshal()
	if _, err := conn.Write(out); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err = readMatching(conn, 77)
	if err != nil {
		t.Fatalf("wrong-length frame got no NACK: %v", err)
	}
	if !resp.IsNack() || resp.Code != airproto.StatusWrongLen {
		t.Fatalf("wrong-length frame answered with %+v, want StatusWrongLen NACK", resp)
	}
	if int(resp.Label) != d.InputLen() {
		t.Fatalf("NACK advertises U=%d, deployment has U=%d", resp.Label, d.InputLen())
	}
	if srv.nacked.Load() != 2 {
		t.Fatalf("nacked counter = %d, want 2", srv.nacked.Load())
	}
}

// fakeResponder runs a scripted UDP peer: for each inbound request it calls
// script with the request and the attempt number, sending back whatever
// frames the script returns.
func fakeResponder(t *testing.T, script func(req *airproto.Frame, n int) []*airproto.Frame) (*net.UDPAddr, *atomic.Int64) {
	t.Helper()
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	received := new(atomic.Int64)
	go func() {
		buf := make([]byte, 65535)
		for n := 0; ; n++ {
			nb, from, err := conn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			req, err := airproto.Unmarshal(buf[:nb])
			if err != nil {
				continue
			}
			received.Store(int64(n + 1))
			for _, f := range script(req, n) {
				out, _ := f.Marshal()
				conn.WriteToUDP(out, from)
			}
		}
	}()
	return conn.LocalAddr().(*net.UDPAddr), received
}

func TestExchangeDiscardsMismatchedID(t *testing.T) {
	// A delayed reply to an earlier request (different ID) arrives first;
	// exchange must keep reading and return the matching frame, not the
	// stale one.
	addr, _ := fakeResponder(t, func(req *airproto.Frame, n int) []*airproto.Frame {
		stale := &airproto.Frame{ID: req.ID + 1000, Data: []complex128{9}}
		good := &airproto.Frame{ID: req.ID, Data: []complex128{1, 2}}
		return []*airproto.Frame{stale, good}
	})
	conn := dialServer(t, addr)
	req := &airproto.Frame{ID: 5, Data: []complex128{1}}
	resp, err := exchange(conn, req, 5*time.Second, 0, time.Millisecond, 3, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 5 || len(resp.Data) != 2 {
		t.Fatalf("exchange returned the stale frame: %+v", resp)
	}
}

func TestExchangeDrainsStaleZeroIDNack(t *testing.T) {
	// An earlier unparseable request was rejected with a zero-ID NACK (the
	// server cannot name a frame it could not parse) that the probe never
	// consumed. The historical bug: readMatching must accept zero-ID NACKs,
	// so the buffered stale rejection was read as the NEXT request's answer,
	// turning a perfectly good exchange into a fatal bad-frame failure.
	// exchange now drains the socket before every send. With a single
	// attempt this test fails on the old code.
	srvConn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srvConn.Close() })
	go func() {
		buf := make([]byte, 65535)
		for {
			n, from, err := srvConn.ReadFromUDP(buf)
			if err != nil {
				return
			}
			req, err := airproto.Unmarshal(buf[:n])
			if err != nil {
				continue
			}
			out, _ := (&airproto.Frame{ID: req.ID, Data: []complex128{1, 2, 3}}).Marshal()
			srvConn.WriteToUDP(out, from)
		}
	}()
	client := dialServer(t, srvConn.LocalAddr().(*net.UDPAddr))

	// Plant the leftover rejection in the client's receive buffer before the
	// exchange starts.
	stale, _ := airproto.Nack(0, airproto.StatusBadFrame, 0).Marshal()
	if _, err := srvConn.WriteToUDP(stale, client.LocalAddr().(*net.UDPAddr)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let the stale datagram land

	resp, err := exchange(client, &airproto.Frame{ID: 41, Data: []complex128{1}},
		2*time.Second, 0, time.Millisecond, 1, rng.New(1))
	if err != nil {
		t.Fatalf("stale zero-ID NACK failed the exchange: %v", err)
	}
	if resp.IsNack() || resp.ID != 41 || len(resp.Data) != 3 {
		t.Fatalf("exchange returned %+v, want the data frame for ID 41", resp)
	}
}

func TestExchangeBacksOffOnDegradedNack(t *testing.T) {
	// First two attempts are answered with a retryable StatusDegraded NACK;
	// the third succeeds. exchange must retry through the NACKs.
	addr, received := fakeResponder(t, func(req *airproto.Frame, n int) []*airproto.Frame {
		if n < 2 {
			return []*airproto.Frame{airproto.Nack(req.ID, airproto.StatusDegraded, 0)}
		}
		return []*airproto.Frame{{ID: req.ID, Data: []complex128{3}}}
	})
	conn := dialServer(t, addr)
	req := &airproto.Frame{ID: 9, Data: []complex128{1}}
	resp, err := exchange(conn, req, 2*time.Second, 0, time.Millisecond, 3, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if resp.IsNack() || resp.ID != 9 {
		t.Fatalf("exchange returned %+v after backoff, want the data frame", resp)
	}
	if got := received.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
}

func TestExchangeWrongLenIsFatal(t *testing.T) {
	// A wrong-length rejection cannot be fixed by retrying: exchange must
	// fail immediately, reporting the deployed U, after a single attempt.
	addr, received := fakeResponder(t, func(req *airproto.Frame, n int) []*airproto.Frame {
		return []*airproto.Frame{airproto.Nack(req.ID, airproto.StatusWrongLen, 784)}
	})
	conn := dialServer(t, addr)
	req := &airproto.Frame{ID: 2, Data: []complex128{1}}
	_, err := exchange(conn, req, 2*time.Second, 0, time.Millisecond, 3, rng.New(1))
	if err == nil {
		t.Fatal("exchange succeeded against a WrongLen NACK")
	}
	if !strings.Contains(err.Error(), "U=784") {
		t.Fatalf("error does not advertise the deployed U: %v", err)
	}
	if got := received.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want 1 (no retry on a fatal NACK)", got)
	}
}

func TestExchangeTimesOutThroughAttempts(t *testing.T) {
	// A silent server exhausts all attempts; the error names the attempt
	// count.
	addr, received := fakeResponder(t, func(req *airproto.Frame, n int) []*airproto.Frame {
		return nil
	})
	conn := dialServer(t, addr)
	req := &airproto.Frame{ID: 3, Data: []complex128{1}}
	start := time.Now()
	_, err := exchange(conn, req, 50*time.Millisecond, 0, time.Millisecond, 3, rng.New(1))
	if err == nil {
		t.Fatal("exchange succeeded against a silent server")
	}
	if !strings.Contains(err.Error(), "3 attempts") {
		t.Fatalf("error does not report the attempts: %v", err)
	}
	if got := received.Load(); got != 3 {
		t.Fatalf("server saw %d sends, want 3", got)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("backoff took implausibly long")
	}
}
