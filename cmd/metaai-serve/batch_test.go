package main

import (
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/airproto"
	"repro/internal/cplx"
	"repro/internal/mobility"
	"repro/internal/obs/trace"
	"repro/internal/ota"
	"repro/internal/rng"
)

// smallDeployment builds a deployment with a different symbol count than
// testDeployment's U=16, for epoch swaps that change the wire contract.
func smallDeployment(t testing.TB, seed uint64, u int) *ota.Deployment {
	t.Helper()
	src := rng.New(seed)
	w := cplx.NewMat(4, u)
	wsrc := rng.New(9)
	for i := range w.Data {
		w.Data[i] = cplx.Expi(wsrc.Phase()) * complex(0.5+wsrc.Float64(), 0)
	}
	d, err := ota.NewDeployment(w, ota.NewOptions(src.Split()), src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestEpochSwapChangingUNacksQueuedRequests pins the enqueue/dequeue
// validation gap: a request validated against the old epoch's U at enqueue
// used to hit the new epoch's session at dequeue after a swap that changed
// U, panicking the worker (killing it for the process lifetime and dropping
// everything queued behind the request). The worker must instead re-check U
// against the epoch it resolves and answer StatusWrongLen carrying the new
// U — and keep serving afterwards.
func TestEpochSwapChangingUNacksQueuedRequests(t *testing.T) {
	d16 := testDeployment(t, 21)
	d8 := smallDeployment(t, 22, 8)
	var srv *airServer
	var once sync.Once
	srv = newAirServer(serverConfig{
		deployment: d16,
		workers:    1,
		queue:      8,
		sessionSrc: rng.New(3),
		logf:       t.Logf,
		// preInfer runs after dequeue and before the worker resolves its
		// epoch: swapping here guarantees the first request was validated
		// against U=16 but is processed under U=8.
		preInfer: func() {
			once.Do(func() {
				srv.healMu.Lock()
				defer srv.healMu.Unlock()
				srv.publish(d8, "swap", trace.ID(0))
			})
		},
	})
	addr, stop := startServer(t, srv)
	defer stop()
	client := dialServer(t, addr)

	req := &airproto.Frame{ID: 1, Data: testSymbols(16, 1)}
	out, _ := req.Marshal()
	if _, err := client.Write(out); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 65535)
	client.SetReadDeadline(time.Now().Add(10 * time.Second))
	n, err := client.Read(buf)
	if err != nil {
		t.Fatalf("no reply to the swapped-out request (worker died?): %v", err)
	}
	resp, err := airproto.Unmarshal(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if !resp.IsNack() || resp.Code != airproto.StatusWrongLen {
		t.Fatalf("got kind %d code %d, want StatusWrongLen NACK", resp.Kind, resp.Code)
	}
	if resp.Label != 8 {
		t.Fatalf("NACK advertises U=%d, want the new epoch's 8", resp.Label)
	}

	// The worker survived the mismatch; a request sized for the new epoch
	// must be served normally.
	req2 := &airproto.Frame{ID: 2, Data: testSymbols(8, 2)}
	out2, _ := req2.Marshal()
	if _, err := client.Write(out2); err != nil {
		t.Fatal(err)
	}
	n, err = client.Read(buf)
	if err != nil {
		t.Fatalf("worker stopped serving after the wrong-length NACK: %v", err)
	}
	resp2, err := airproto.Unmarshal(buf[:n])
	if err != nil {
		t.Fatal(err)
	}
	if resp2.IsNack() || resp2.ID != 2 {
		t.Fatalf("follow-up request got kind %d code %d id %d, want a data frame for id 2", resp2.Kind, resp2.Code, resp2.ID)
	}
	if srv.served.Load() != 1 {
		t.Fatalf("served %d, want 1", srv.served.Load())
	}
}

// nullWriter satisfies udpWriter without touching a socket: the kernel
// write path may allocate, and the zero-alloc measurement is about our
// serving loop, not the syscall.
type nullWriter struct{}

func (nullWriter) WriteToUDP(b []byte, _ *net.UDPAddr) (int, error) { return len(b), nil }

// TestWorkerBatchSteadyStateZeroAlloc measures the worker's per-wakeup body
// (processBatch) in steady state with the margin monitor armed: after
// warmup, an 8-request batch must allocate nothing — accumulators,
// magnitude scratch, reply frame, and marshal buffer all live in the
// worker's reusable scratch.
func TestWorkerBatchSteadyStateZeroAlloc(t *testing.T) {
	d := testDeployment(t, 23)
	srv := newAirServer(serverConfig{
		deployment: d,
		monitor:    mobility.NewMonitor(math.MaxFloat64, 8),
		workers:    1,
		batch:      8,
		sessionSrc: rng.New(3),
		logf:       t.Logf,
	})
	from := &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1), Port: 1}
	reqs := make([]request, 8)
	for i := range reqs {
		reqs[i] = request{
			frame: &airproto.Frame{ID: uint32(i + 1), Label: -1, Data: testSymbols(d.InputLen(), uint64(i+1))},
			from:  from,
		}
	}
	sc := scratchPool.Get().(*workerScratch)
	defer scratchPool.Put(sc)
	run := func() {
		sc.batch = append(sc.batch[:0], reqs...)
		srv.processBatch(nullWriter{}, 0, sc)
	}
	run() // warmup: builds accumulators, mags, and marshal buffer
	// Few measured runs keep total served under the 50-request log
	// milestone, whose logf call is the one allocation the steady-state
	// loop legitimately makes.
	if n := testing.AllocsPerRun(4, run); n != 0 {
		t.Fatalf("steady-state batch wakeup allocates %.1f/op, want 0", n)
	}
}

// TestBatchedServingBitIdenticalToSequential drives the same request
// stream through a batch=1 server and a batch=8 server built from
// identical seeds and asserts byte-identical reply frames per request ID —
// the end-to-end half of the batching contract.
func TestBatchedServingBitIdenticalToSequential(t *testing.T) {
	replies := func(batch int) map[uint32][]byte {
		d := testDeployment(t, 24)
		srv := newAirServer(serverConfig{
			deployment: d,
			workers:    1,
			batch:      batch,
			queue:      32,
			sessionSrc: rng.New(5),
			logf:       t.Logf,
		})
		addr, stop := startServer(t, srv)
		defer stop()
		client := dialServer(t, addr)
		const n = 12
		for i := 1; i <= n; i++ {
			req := &airproto.Frame{ID: uint32(i), Data: testSymbols(d.InputLen(), uint64(i))}
			out, _ := req.Marshal()
			if _, err := client.Write(out); err != nil {
				t.Fatal(err)
			}
		}
		got := make(map[uint32][]byte)
		buf := make([]byte, 65535)
		client.SetReadDeadline(time.Now().Add(10 * time.Second))
		for len(got) < n {
			sz, err := client.Read(buf)
			if err != nil {
				t.Fatalf("after %d/%d replies at batch %d: %v", len(got), n, batch, err)
			}
			resp, err := airproto.Unmarshal(buf[:sz])
			if err != nil || resp.IsNack() {
				t.Fatalf("bad reply at batch %d: %v (nack=%v)", batch, err, resp != nil && resp.IsNack())
			}
			got[resp.ID] = append([]byte(nil), buf[:sz]...)
		}
		return got
	}
	seq := replies(1)
	bat := replies(8)
	for id, want := range seq {
		if string(bat[id]) != string(want) {
			t.Fatalf("request %d: batch=8 reply differs from batch=1 reply", id)
		}
	}
}
