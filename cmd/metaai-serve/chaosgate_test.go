package main

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"repro/internal/airproto"
	"repro/internal/checkpoint"
	"repro/internal/fleet"
	"repro/internal/netchaos"
	"repro/internal/ota"
	"repro/internal/rng"
)

// chaosReplica is a fleet replica whose serving socket is wrapped in
// seeded netchaos lanes: every datagram in or out of the replica can be
// dropped, duplicated, reordered, or mangled, and the replica cannot tell
// — exactly like a real lossy edge link.
type chaosReplica struct {
	srv   *airServer
	udp   *net.UDPConn
	chaos *netchaos.Conn
	addr  *net.UDPAddr
	name  string
	done  chan error
}

func startChaosReplica(t *testing.T, d *ota.Deployment, probes [][]complex128, seed uint64, rate float64) *chaosReplica {
	t.Helper()
	srv := newAirServer(serverConfig{
		deployment:   d,
		workers:      2,
		queue:        128,
		meta:         checkpoint.Meta{Dataset: "synthetic", Seed: seed},
		canaryProbes: probes,
		canaryFrac:   0.8,
		canarySeed:   0xca9a,
		sessionSrc:   rng.New(seed),
		logf:         t.Logf,
	})
	udp, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	ch := netchaos.Wrap(udp, netchaos.Config{
		Seed:     seed ^ 0xc4a05,
		Inbound:  netchaos.Mix(rate),
		Outbound: netchaos.Mix(rate),
	})
	done := make(chan error, 1)
	go func() { done <- srv.serve(ch) }()
	addr := udp.LocalAddr().(*net.UDPAddr)
	return &chaosReplica{srv: srv, udp: udp, chaos: ch, addr: addr, name: addr.String(), done: done}
}

func (r *chaosReplica) stop() {
	r.udp.Close()
	<-r.done
}

// join announces the replica from its serving socket (raw — announcements
// are the one packet kept honest so registration and eviction-resurrection
// converge quickly; everything else rides the chaos lanes).
func (r *chaosReplica) join(front *net.UDPAddr) {
	fleetSeq, fleetNonce := r.srv.fleetAgent.FleetVersion()
	f := airproto.Join(1, fleetSeq, r.srv.epochSeq.Load(), fleetNonce)
	if out, err := f.Marshal(); err == nil {
		r.udp.WriteToUDP(out, front)
	}
}

// chaosRouterConfig builds the router config the gate uses for both
// coordinator incarnations — StateDir is what makes the second incarnation
// a RESTART rather than a fresh coordinator.
func chaosRouterConfig(stateDir string, reps []*chaosReplica, logf func(string, ...interface{})) fleet.Config {
	var seeds []fleet.Replica
	for _, r := range reps {
		seeds = append(seeds, fleet.Replica{Addr: r.addr.String()})
	}
	return fleet.Config{
		Replicas:         seeds,
		HeartbeatEvery:   25 * time.Millisecond,
		HeartbeatTimeout: 150 * time.Millisecond,
		Detector: fleet.DetectorConfig{
			SuspectMisses: 3,
			ProbeBase:     20 * time.Millisecond,
			ProbeMax:      150 * time.Millisecond,
			ProbeLimit:    6,
		},
		ForwardTimeout: 4 * time.Second,
		HedgeAfter:     50 * time.Millisecond,
		MaxAttempts:    3,
		ChunkBytes:     512,
		PublishTimeout: 150 * time.Millisecond,
		PublishRetries: 8, // chunk acks cross two chaos lanes; stop-and-wait resends
		CanaryFrac:     0.8,
		Seed:           7,
		StateDir:       stateDir,
		Logf:           logf,
	}
}

// TestChaosGate is the bad-network acceptance soak (make chaosgate): three
// replicas whose serving sockets all run the seeded netchaos.Mix(0.1)
// fault load (drops, dups, reordering, truncation, corruption, both
// directions) behind a router, under sustained deadline-stamped client
// load, through a transient one-way partition of one replica and a full
// coordinator restart that restores the journaled fleet state. The gate
// asserts the three survival invariants:
//
//  1. ZERO accepted-request loss — every client exchange is answered with a
//     well-formed accumulator frame within its retry budget; chaos may slow
//     a request down, never lose it.
//  2. Fleet convergence — after the partition heals and after the restarted
//     coordinator's anti-entropy round, every replica reports the latest
//     committed fleet sequence; the restarted coordinator's next publish
//     advances the restored sequence rather than reusing it.
//  3. Goodput floor — at least 90% of requests complete within 1s. The
//     no-chaos baseline answers essentially 100% within that bound (the
//     clean loopback round trip is sub-millisecond), so this is the
//     ">=90% of no-chaos goodput" floor in absolute form.
func TestChaosGate(t *testing.T) {
	clients, perPhase := 3, 30
	if testing.Short() {
		perPhase = 10
	}
	const chaosRate = 0.1
	d := testDeployment(t, 11)
	probes := make([][]complex128, 16)
	for i := range probes {
		probes[i] = testSymbols(d.InputLen(), uint64(200+i))
	}
	stateDir := t.TempDir()

	reps := make([]*chaosReplica, 3)
	for i := range reps {
		reps[i] = startChaosReplica(t, d, probes, uint64(60+i), chaosRate)
	}
	defer func() {
		for _, r := range reps {
			r.stop()
		}
	}()

	router, err := fleet.NewRouter(chaosRouterConfig(stateDir, reps, t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	front, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	go router.Serve(front)
	frontAddr := front.LocalAddr().(*net.UDPAddr)

	for _, r := range reps {
		r := r
		waitFor(t, "replica "+r.name+" to register", func() bool {
			r.join(frontAddr)
			_, ok := router.MemberFleetSeq(r.name)
			return ok
		})
	}
	waitFor(t, "3 live members", func() bool { return router.Live() == 3 })

	// Replicas re-announce on a ticker for the whole soak, exactly like
	// metaai-serve -join does (joinEvery): under sustained chaos a replica
	// can miss three heartbeats AND all its probes and be wrongly evicted,
	// and the periodic announcement is the designed resurrection path — an
	// evicted member that stops announcing is indistinguishable from a dead
	// one and stays out of the fleet.
	stopAnnounce := make(chan struct{})
	var announceWG sync.WaitGroup
	for _, r := range reps {
		r := r
		announceWG.Add(1)
		go func() {
			defer announceWG.Done()
			tick := time.NewTicker(500 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stopAnnounce:
					return
				case <-tick.C:
					r.join(frontAddr)
				}
			}
		}()
	}
	defer func() { close(stopAnnounce); announceWG.Wait() }()

	// Sustained load for the whole soak. Every request carries a wire
	// deadline budget (exercising decrement across the router's hedged
	// hops); an expired or browned-out NACK is a retryable answer, but an
	// exchange that exhausts its attempts is accepted-request loss and
	// fails the gate.
	var (
		loadWG   sync.WaitGroup
		answered atomic.Int64
		fast     atomic.Int64 // answered within the goodput bound
		stopLoad = make(chan struct{})
		loadErrs = make(chan error, clients)
	)
	const goodputBound = time.Second
	for c := 0; c < clients; c++ {
		c := c
		loadWG.Add(1)
		go func() {
			defer loadWG.Done()
			conn, err := net.DialUDP("udp", nil, frontAddr)
			if err != nil {
				loadErrs <- err
				return
			}
			defer conn.Close()
			src := rng.New(uint64(4000 + c))
			for i := 0; ; i++ {
				select {
				case <-stopLoad:
					return
				default:
				}
				id := uint32(c*1_000_000 + i + 1)
				req := &airproto.Frame{ID: id, Data: testSymbols(d.InputLen(), uint64(id))}
				req.SetDeadline(2 * time.Second)
				start := time.Now()
				// A corrupted response can unmarshal into the wrong shape —
				// airproto has no payload checksum, so shape validation is the
				// client's job. Re-asking with the same ID is answered from the
				// server's response cache, so a clean copy comes back. A
				// connection-refused error means the router front port is down
				// mid-restart: the request was never accepted (nothing was
				// listening), so the client keeps retrying through the window —
				// only within a bound, so a router that never comes back still
				// fails the gate.
				var resp *airproto.Frame
				var err error
				refusedUntil := start.Add(15 * time.Second)
				for try := 0; ; try++ {
					resp, err = exchange(conn, req, 500*time.Millisecond, 0, 20*time.Millisecond, 10, src)
					if err != nil && errors.Is(err, syscall.ECONNREFUSED) && time.Now().Before(refusedUntil) {
						time.Sleep(50 * time.Millisecond)
						continue
					}
					if err == nil && len(resp.Data) != d.Classes() {
						if try < 5 {
							continue
						}
						err = fmt.Errorf("%d accumulators, want %d", len(resp.Data), d.Classes())
					}
					break
				}
				if err != nil {
					loadErrs <- fmt.Errorf("client %d request %d lost: %w", c, id, err)
					return
				}
				if time.Since(start) <= goodputBound {
					fast.Add(1)
				}
				answered.Add(1)
			}
		}()
	}
	phaseFloor := func(n int64) {
		t.Helper()
		waitFor(t, fmt.Sprintf("%d answered requests", n), func() bool {
			select {
			case err := <-loadErrs:
				t.Fatal(err)
			default:
			}
			return answered.Load() >= n
		})
	}
	phaseFloor(int64(clients))

	// Phase 1: replicate an epoch fleet-wide THROUGH the chaos lanes — the
	// chunked stop-and-wait transfer must survive dropped and mangled
	// chunks on every replica link.
	waitFor(t, "publish through chaos to commit", func() bool {
		return router.Publish(sealedChaosEpoch(d, 1)) == nil
	})
	tid1 := router.CurrentTid()
	for _, r := range reps {
		r := r
		waitFor(t, "replica "+r.name+" at fleet seq", func() bool {
			return r.srv.fleetAgent.FleetSeq() == uint64(tid1)
		})
	}
	phaseFloor(int64(clients * perPhase))

	// Phase 2: transient one-way partition — one replica stops HEARING the
	// world (its outbound stays up, the classic asymmetric failure). Its
	// share of the load fails over via hedging; after the partition heals
	// the replica must be routable again without rejoining.
	victim := reps[1]
	victim.chaos.Partition(netchaos.Inbound, true)
	phaseFloor(int64(2 * clients * perPhase))
	victim.chaos.Partition(netchaos.Inbound, false)
	waitFor(t, "partitioned replica trusted again", func() bool {
		victim.join(frontAddr) // rejoin announce, like metaai-serve -join re-announcing
		return router.Live() == 3
	})
	phaseFloor(int64(3 * clients * perPhase))

	// Phase 3: coordinator restart under load. The new incarnation restores
	// pubSeq, membership, and the committed epoch from the state journal
	// (the CurrentTid check below proves the restore — a cold start would
	// begin at 0), rebinds the SAME front port, and must (a) reconverge the
	// replicas via anti-entropy under a fresh incarnation nonce and (b)
	// advance the publication sequence past the restored one on its next
	// publish instead of reusing sequences. The replicas' periodic
	// announcements keep running exactly as in production.
	front.Close()
	router.Close()
	router2, err := fleet.NewRouter(chaosRouterConfig(stateDir, nil, t.Logf))
	if err != nil {
		t.Fatal(err)
	}
	defer router2.Close()
	front2, err := net.ListenUDP("udp", frontAddr)
	if err != nil {
		t.Fatalf("rebinding the front port: %v", err)
	}
	defer front2.Close()
	go router2.Serve(front2)

	if got := router2.CurrentTid(); got != tid1 {
		t.Fatalf("restarted coordinator restored committed seq %d, want %d", got, tid1)
	}
	for _, r := range reps {
		r := r
		// Fresh incarnation nonce + journaled membership: the replicas'
		// (old nonce, seq) versions mismatch and anti-entropy re-pushes the
		// journaled epoch without any join traffic.
		waitFor(t, "replica "+r.name+" reconverged after restart", func() bool {
			seq, nonce := r.srv.fleetAgent.FleetVersion()
			return seq == uint64(router2.CurrentTid()) && nonce == router2.Incarnation()
		})
	}
	waitFor(t, "restarted coordinator publish to commit", func() bool {
		return router2.Publish(sealedChaosEpoch(d, 2)) == nil
	})
	if tid2 := router2.CurrentTid(); tid2 <= tid1 {
		t.Fatalf("restarted coordinator reused publication sequence: %d after %d", tid2, tid1)
	}
	for _, r := range reps {
		r := r
		waitFor(t, "replica "+r.name+" on the post-restart epoch", func() bool {
			return r.srv.fleetAgent.FleetSeq() == uint64(router2.CurrentTid())
		})
	}
	phaseFloor(int64(4 * clients * perPhase))

	close(stopLoad)
	loadWG.Wait()
	close(loadErrs)
	for err := range loadErrs {
		t.Error(err)
	}
	total, quick := answered.Load(), fast.Load()
	if total == 0 {
		t.Fatal("no requests answered")
	}
	goodput := float64(quick) / float64(total)
	t.Logf("chaosgate: %d requests answered, %.1f%% within %v, fleet at seq %d",
		total, 100*goodput, goodputBound, router2.CurrentTid())
	if goodput < 0.9 {
		t.Fatalf("goodput %.3f below the 0.9 floor (%d/%d within %v)", goodput, quick, total, goodputBound)
	}
}

// sealedChaosEpoch mirrors sealedEpoch (fleetbench) — duplicated locally so
// the chaos gate file stands alone when read.
func sealedChaosEpoch(d *ota.Deployment, seq uint64) []byte {
	return checkpoint.EncodeEpoch(&checkpoint.Epoch{
		Seq: seq, Reason: fleet.ReasonReplicate,
		Meta:  checkpoint.Meta{Dataset: "synthetic", Seed: 1},
		State: d.State(),
	})
}
