package main

import (
	"bytes"
	"encoding/json"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/airproto"
	"repro/internal/checkpoint"
	"repro/internal/fleet"
	"repro/internal/netchaos"
	"repro/internal/obs/trace"
	"repro/internal/ota"
	"repro/internal/rng"
)

// startTracedReplica starts a fleet replica with its OWN tracer (its own
// retention ring, the way a separate process naturally has one) and an
// adjustable per-request delay. The delay runs in the worker just before
// inference, so a slowed replica still answers heartbeats promptly — it is
// slow, not dead, which is exactly the condition hedging exists for.
func startTracedReplica(t *testing.T, d *ota.Deployment, seed uint64, tracer *trace.Tracer, delay *atomic.Int64) *fleetReplica {
	t.Helper()
	srv := newAirServer(serverConfig{
		deployment: d,
		workers:    2,
		queue:      128,
		meta:       checkpoint.Meta{Dataset: "synthetic", Seed: seed},
		sessionSrc: rng.New(seed),
		logf:       t.Logf,
		tracer:     tracer,
		preInfer: func() {
			if d := delay.Load(); d > 0 {
				time.Sleep(time.Duration(d))
			}
		},
	})
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.serve(conn) }()
	addr := conn.LocalAddr().(*net.UDPAddr)
	return &fleetReplica{srv: srv, conn: conn, addr: addr, name: addr.String(), done: done}
}

// registerReplicas joins every replica to the router and waits for full
// liveness. join is a UDP datagram, so it re-announces until the router
// acknowledges membership (the front socket may be chaos-wrapped).
func registerReplicas(t *testing.T, router *fleet.Router, frontAddr *net.UDPAddr, reps []*fleetReplica) {
	t.Helper()
	for _, r := range reps {
		r := r
		waitFor(t, "replica "+r.name+" to register", func() bool {
			r.join(frontAddr)
			_, ok := router.MemberFleetSeq(r.name)
			return ok
		})
	}
	waitFor(t, "all replicas live", func() bool { return router.Live() == len(reps) })
}

// TestFleetStitchedTraceEndToEnd is the cross-hop tracing acceptance test:
// a client request hedged across two replicas through a real router must
// yield ONE stitched Chrome-JSON document when the trace is fetched at the
// router — the router's fleet.request root, both fleet.hop attempts (the
// loser closed as cancelled), and each replica's serve.request span
// parented under its own hop. Router and replicas run in-process but each
// owns a separate tracer ring, so the stitch genuinely crosses the UDP
// fan-out instead of reading one shared ring. The normalized export is
// fetched twice and pinned byte-identical — the stitchgate contract.
func TestFleetStitchedTraceEndToEnd(t *testing.T) {
	d := testDeployment(t, 11)

	mkTracer := func() *trace.Tracer {
		tr := &trace.Tracer{}
		tr.Enable(64, 1.0) // retain everything: the fetch must be deterministic
		return tr
	}
	repTracers := []*trace.Tracer{mkTracer(), mkTracer()}
	routerTracer := mkTracer()

	delays := []*atomic.Int64{new(atomic.Int64), new(atomic.Int64)}
	reps := []*fleetReplica{
		startTracedReplica(t, d, 21, repTracers[0], delays[0]),
		startTracedReplica(t, d, 22, repTracers[1], delays[1]),
	}
	defer func() {
		for _, r := range reps {
			r.stop()
		}
	}()

	router, err := fleet.NewRouter(fleet.Config{
		HeartbeatEvery:   25 * time.Millisecond,
		HeartbeatTimeout: 250 * time.Millisecond,
		ForwardTimeout:   4 * time.Second,
		HedgeAfter:       60 * time.Millisecond,
		MaxAttempts:      2,
		Seed:             7,
		Tracer:           routerTracer,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	front, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()
	go router.Serve(front)
	frontAddr := front.LocalAddr().(*net.UDPAddr)
	registerReplicas(t, router, frontAddr, reps)

	conn := dialServer(t, frontAddr)
	src := rng.New(5)

	// Warmup request: the consistent-hash preference list keys on the
	// client address, so whichever replica served it is THIS socket's
	// primary — the one to slow down so the real request hedges.
	warm := &airproto.Frame{ID: 1, Data: testSymbols(d.InputLen(), 1)}
	if _, err := exchange(conn, warm, 2*time.Second, 0, 20*time.Millisecond, 1, src); err != nil {
		t.Fatal(err)
	}
	primary := 0
	if reps[1].srv.served.Load() > 0 {
		primary = 1
	}
	secondary := 1 - primary
	if got := reps[primary].srv.served.Load(); got != 1 {
		t.Fatalf("warmup served %d requests on the primary, want 1", got)
	}
	delays[primary].Store(int64(250 * time.Millisecond))

	// The real request: the slow primary sits on it past HedgeAfter, the
	// router launches the secondary, the secondary's reply wins. Single
	// attempt so exactly one forward (fwdSeq 2) carries this request.
	const reqID = 42
	req := &airproto.Frame{ID: reqID, Data: testSymbols(d.InputLen(), reqID)}
	resp, err := exchange(conn, req, 2*time.Second, 0, 20*time.Millisecond, 1, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Data) != d.Classes() {
		t.Fatalf("hedged request answered with %d accumulators, want %d", len(resp.Data), d.Classes())
	}

	// The forward ordinal is deterministic: warmup was this router's first
	// forward, the hedged request its second.
	tid := trace.Derive(0xf1ee70b5, uint64(reqID), 2)

	// Wait until every segment is retained: the cancelled primary still
	// finishes serving (and its serve.request span) 250ms later, and the
	// stitched export must already include it on the FIRST fetch or the
	// byte-identity pin below would be satisfied only by luck.
	waitFor(t, "all three trace segments retained", func() bool {
		for _, tr := range []*trace.Tracer{routerTracer, repTracers[0], repTracers[1]} {
			if seg, _ := tr.Get(tid); seg == nil {
				return false
			}
		}
		return true
	})

	fetch := func() []byte {
		t.Helper()
		treq := airproto.TraceRequest(uint64(tid))
		treq.Code = airproto.TraceFlagNormalize
		resp, err := exchange(conn, treq, 2*time.Second, 0, 20*time.Millisecond, 3, src)
		if err != nil {
			t.Fatalf("stitched trace fetch: %v", err)
		}
		if resp.Kind != airproto.KindTrace || resp.IsNack() {
			t.Fatalf("stitched trace fetch answered kind %d code %d", resp.Kind, resp.Code)
		}
		if resp.Code == airproto.StatusNoTrace {
			t.Fatal("stitched trace was truncated")
		}
		return airproto.UnpackBytes(resp.Data, int(resp.Label))
	}
	doc := fetch()
	if again := fetch(); !bytes.Equal(doc, again) {
		t.Fatalf("normalized stitched exports differ across fetches:\n%s\n--- vs ---\n%s", doc, again)
	}

	// ONE document: the stitch splices the replica segments into the root's
	// traceEvents array rather than concatenating documents.
	if n := strings.Count(string(doc), `"traceEvents":[`); n != 1 {
		t.Fatalf("stitched export has %d traceEvents arrays, want 1:\n%s", n, doc)
	}
	var parsed struct {
		Metadata struct {
			TraceID string `json:"trace_id"`
			Name    string `json:"name"`
		} `json:"metadata"`
		TraceEvents []struct {
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(doc, &parsed); err != nil {
		t.Fatalf("stitched export does not parse: %v\n%s", err, doc)
	}
	if parsed.Metadata.Name != "fleet.request" {
		t.Fatalf("stitched trace is anchored on %q, want the router's fleet.request", parsed.Metadata.Name)
	}
	if parsed.Metadata.TraceID != tid.String() {
		t.Fatalf("stitched trace id %s, want %s", parsed.Metadata.TraceID, tid)
	}

	var rootID string
	hops := make(map[string]map[string]any)      // span_id -> args
	outcomes := make(map[string]map[string]any)  // outcome -> args
	var serves []map[string]any
	for _, ev := range parsed.TraceEvents {
		switch ev.Name {
		case "fleet.request":
			if rootID != "" {
				t.Fatal("stitched export carries two fleet.request roots")
			}
			rootID, _ = ev.Args["span_id"].(string)
		case "fleet.hop":
			id, _ := ev.Args["span_id"].(string)
			hops[id] = ev.Args
			outcome, _ := ev.Args["outcome"].(string)
			outcomes[outcome] = ev.Args
		case "serve.request":
			serves = append(serves, ev.Args)
		}
	}
	if rootID == "" {
		t.Fatalf("no fleet.request root span in the stitched export:\n%s", doc)
	}
	if len(hops) != 2 {
		t.Fatalf("%d fleet.hop spans, want 2 (primary + hedge):\n%s", len(hops), doc)
	}
	for id, args := range hops {
		if args["parent_id"] != rootID {
			t.Fatalf("hop %s parents under %v, want the root %s", id, args["parent_id"], rootID)
		}
	}
	won, cancelled := outcomes["won"], outcomes["cancelled"]
	if won == nil || cancelled == nil {
		t.Fatalf("hop outcomes %v, want one won and one cancelled", outcomes)
	}
	if won["replica"] != reps[secondary].name {
		t.Fatalf("hedge winner was %v, want the fast secondary %s", won["replica"], reps[secondary].name)
	}
	if cancelled["replica"] != reps[primary].name {
		t.Fatalf("cancelled hop was %v, want the slowed primary %s", cancelled["replica"], reps[primary].name)
	}
	if len(serves) != 2 {
		t.Fatalf("%d serve.request spans, want one per replica:\n%s", len(serves), doc)
	}
	parents := make(map[string]bool)
	for _, s := range serves {
		p, _ := s["parent_id"].(string)
		if _, ok := hops[p]; !ok {
			t.Fatalf("a serve.request parents under %q, which is not a fleet.hop span", p)
		}
		parents[p] = true
	}
	if len(parents) != 2 {
		t.Fatal("both serve.request spans parent under the same hop")
	}
	wonID, _ := won["span_id"].(string)
	if !parents[wonID] {
		t.Fatal("the winning hop has no serve.request child: the winner's replica segment is missing")
	}
}

// TestRouterControlPlaneSurvivesChaosAndSaturation is the -chaos-rate
// control-plane regression: with the client-facing socket under seeded
// packet chaos AND the data plane saturated past the router's inflight cap
// (so data frames are being shed with StatusDegraded), KindStats and
// KindTrace requests at the router must still be answered — they are
// handled outside the admission path, and an operator reading a drowning
// fleet's vitals must never compete with the data plane.
func TestRouterControlPlaneSurvivesChaosAndSaturation(t *testing.T) {
	d := testDeployment(t, 11)
	routerTracer := &trace.Tracer{}
	routerTracer.Enable(64, 1.0)

	delay := new(atomic.Int64)
	rep := startTracedReplica(t, d, 23, &trace.Tracer{}, delay)
	defer rep.stop()

	router, err := fleet.NewRouter(fleet.Config{
		HeartbeatEvery:     25 * time.Millisecond,
		HeartbeatTimeout:   250 * time.Millisecond,
		ForwardTimeout:     2 * time.Second,
		HedgeAfter:         500 * time.Millisecond,
		MaxAttempts:        1,
		InflightPerReplica: 1, // one forward in flight saturates the router
		Seed:               9,
		Tracer:             routerTracer,
		Logf:               t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	udpFront, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer udpFront.Close()
	// The same wrapping metaai-fleet -chaos-rate applies: seeded packet
	// fates on everything crossing the client-facing socket, both ways.
	front := netchaos.Wrap(udpFront, netchaos.Config{
		Seed:     9,
		Inbound:  netchaos.Mix(0.25),
		Outbound: netchaos.Mix(0.25),
	})
	go router.Serve(front)
	frontAddr := udpFront.LocalAddr().(*net.UDPAddr)
	registerReplicas(t, router, frontAddr, []*fleetReplica{rep})

	conn := dialServer(t, frontAddr)
	src := rng.New(6)

	// One clean request through the chaos front so the router retains a
	// fleet.request trace to fetch later. Chaos may eat attempts (and each
	// arrival bumps the forward ordinal), so the trace ID is read from the
	// router's ring rather than derived.
	warm := &airproto.Frame{ID: 3, Data: testSymbols(d.InputLen(), 3)}
	if _, err := exchange(conn, warm, time.Second, 0, 20*time.Millisecond, 8, src); err != nil {
		t.Fatal(err)
	}
	var tid trace.ID
	waitFor(t, "a retained fleet.request trace", func() bool {
		sums := routerTracer.List()
		if len(sums) == 0 {
			return false
		}
		tid = sums[0].ID
		return true
	})

	// Saturate: the replica sits on every data frame for 400ms while the
	// router admits exactly one forward at a time, so concurrent pinner
	// clients keep the slot occupied and surplus data frames shed.
	delay.Store(int64(400 * time.Millisecond))
	stopLoad := make(chan struct{})
	defer close(stopLoad)
	for c := 0; c < 3; c++ {
		c := c
		go func() {
			pconn, err := net.DialUDP("udp", nil, frontAddr)
			if err != nil {
				return
			}
			defer pconn.Close()
			psrc := rng.New(uint64(100 + c))
			for i := 0; ; i++ {
				select {
				case <-stopLoad:
					return
				default:
				}
				id := uint32(c*1_000_000 + i + 10)
				req := &airproto.Frame{ID: id, Data: testSymbols(d.InputLen(), uint64(id))}
				exchange(pconn, req, 600*time.Millisecond, 0, 10*time.Millisecond, 1, psrc)
			}
		}()
	}

	// Under saturation and chaos, stats exchanges must keep succeeding and
	// must eventually REPORT the data-plane shedding — the proof both that
	// the control plane is never shed and that the data plane was.
	statsConn := dialServer(t, frontAddr)
	statsSrc := rng.New(8)
	var sawShed bool
	deadline := time.Now().Add(15 * time.Second)
	for probe := uint32(200); !sawShed; probe++ {
		if time.Now().After(deadline) {
			t.Fatal("stats never reported data-plane shedding under saturation")
		}
		legacy, fleetStats, err := serverStats(statsConn, probe, 2*time.Second, 0, statsSrc)
		if err != nil {
			// Chaos can still eat every retry of one exchange; what must
			// NEVER happen is a StatusDegraded shed of a stats request,
			// which exchange surfaces verbatim.
			if strings.Contains(err.Error(), "degraded") {
				t.Fatalf("a KindStats request was load-shed at the router: %v", err)
			}
			continue
		}
		if fleetStats == nil {
			t.Fatalf("router answered stats without the fleet extension: %v", legacy)
		}
		if shed, ok := fleetStats["shed"].(int64); ok && shed > 0 {
			sawShed = true
		}
	}

	// And a trace fetch through the same drowning front must still answer.
	treq := airproto.TraceRequest(uint64(tid))
	treq.Code = airproto.TraceFlagNormalize
	resp, err := exchange(statsConn, treq, 2*time.Second, 0, 20*time.Millisecond, 8, statsSrc)
	if err != nil {
		t.Fatalf("trace fetch under chaos + saturation: %v", err)
	}
	if resp.Kind != airproto.KindTrace || resp.IsNack() {
		t.Fatalf("trace fetch answered kind %d code %d", resp.Kind, resp.Code)
	}
	if body := airproto.UnpackBytes(resp.Data, int(resp.Label)); !bytes.Contains(body, []byte(`"fleet.request"`)) {
		t.Fatalf("trace fetched under chaos lacks the fleet.request root:\n%s", body)
	}
}
