package main

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/airproto"
	"repro/internal/checkpoint"
	"repro/internal/cplx"
	"repro/internal/fleet"
	"repro/internal/ota"
	"repro/internal/rng"
)

// fleetReplica bundles one running replica for the fleet bench: a real
// airServer (fleet agent included) on its own loopback socket.
type fleetReplica struct {
	srv  *airServer
	conn *net.UDPConn
	addr *net.UDPAddr
	name string
	done chan error
}

func startFleetReplica(t *testing.T, d *ota.Deployment, probes [][]complex128, seed uint64) *fleetReplica {
	t.Helper()
	srv := newAirServer(serverConfig{
		deployment:   d,
		workers:      2,
		queue:        128,
		meta:         checkpoint.Meta{Dataset: "synthetic", Seed: seed},
		canaryProbes: probes,
		canaryFrac:   0.8,
		canarySeed:   0xca9a,
		sessionSrc:   rng.New(seed),
		logf:         t.Logf,
	})
	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.serve(conn) }()
	addr := conn.LocalAddr().(*net.UDPAddr)
	return &fleetReplica{srv: srv, conn: conn, addr: addr, name: addr.String(), done: done}
}

// stop kills the replica: the socket closes, serve drains, and from the
// router's point of view the process is gone mid-flight.
func (r *fleetReplica) stop() {
	r.conn.Close()
	<-r.done
}

// join announces the replica to the router from its SERVING socket, exactly
// like metaai-serve -join: the router learns the data-path address from the
// datagram's source. The reply is consumed by the replica's own fleet agent.
func (r *fleetReplica) join(front *net.UDPAddr) {
	fleetSeq, fleetNonce := r.srv.fleetAgent.FleetVersion()
	f := airproto.Join(1, fleetSeq, r.srv.epochSeq.Load(), fleetNonce)
	if out, err := f.Marshal(); err == nil {
		r.conn.WriteToUDP(out, front)
	}
}

// sabotagedDeployment builds a deployment with scrambled weights — the same
// shape as testDeployment's but entirely different predictions, so it is the
// replicated analogue of a corrupted heal candidate. (testDeployment always
// seeds its WEIGHTS from the same source; only the scramble seed here makes
// the predictions diverge.)
func sabotagedDeployment(t *testing.T, seed uint64) *ota.Deployment {
	t.Helper()
	src := rng.New(seed)
	w := cplx.NewMat(4, 16)
	wsrc := rng.New(seed ^ 0xbad)
	for i := range w.Data {
		w.Data[i] = cplx.Expi(wsrc.Phase()) * complex(0.5+wsrc.Float64(), 0)
	}
	d, err := ota.NewDeployment(w, ota.NewOptions(src.Split()), src)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// sealedEpoch encodes a deployment as the sealed checkpoint the coordinator
// replicates — the same bytes a metaai-serve journal holds.
func sealedEpoch(d *ota.Deployment, seq uint64) []byte {
	return checkpoint.EncodeEpoch(&checkpoint.Epoch{
		Seq: seq, Reason: fleet.ReasonReplicate,
		Meta:  checkpoint.Meta{Dataset: "synthetic", Seed: 1},
		State: d.State(),
	})
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFleetBench is the fleet acceptance bench (make fleetbench; -short is
// the fleetgate smoke). Three replicas behind a router under sustained
// client load, with every fleet failure mode exercised mid-flight:
//
//  1. An epoch replicates fleet-wide through the canary and every replica
//     converges on the fleet sequence.
//  2. A sabotaged epoch is refused by the canary's held-out agreement check
//     and the WHOLE fleet — canary included — rolls back and re-converges.
//  3. A replica is killed; its requests fail over via hedging, the publish
//     in flight evicts the corpse and commits on the survivors.
//  4. A replacement joins, is caught up by anti-entropy, and the fleet is
//     back to full strength on the latest valid epoch.
//
// Throughout, every client request must be answered — zero request loss.
func TestFleetBench(t *testing.T) {
	clients, perPhase := 6, 40
	if testing.Short() {
		clients, perPhase = 3, 10
	}
	d := testDeployment(t, 11)
	probes := make([][]complex128, 16)
	for i := range probes {
		probes[i] = testSymbols(d.InputLen(), uint64(200+i))
	}

	reps := make([]*fleetReplica, 3)
	for i := range reps {
		reps[i] = startFleetReplica(t, d, probes, uint64(20+i))
	}

	router, err := fleet.NewRouter(fleet.Config{
		HeartbeatEvery:   25 * time.Millisecond,
		HeartbeatTimeout: 150 * time.Millisecond,
		Detector: fleet.DetectorConfig{
			SuspectMisses: 2,
			ProbeBase:     20 * time.Millisecond,
			ProbeMax:      150 * time.Millisecond,
			ProbeLimit:    3,
		},
		ForwardTimeout: 4 * time.Second,
		HedgeAfter:     50 * time.Millisecond,
		MaxAttempts:    3,
		ChunkBytes:     512, // multi-chunk transfers, so kills land mid-transfer
		PublishTimeout: 150 * time.Millisecond,
		PublishRetries: 4,
		CanaryFrac:     0.8,
		Seed:           7,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()

	front, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer front.Close()
	go router.Serve(front)
	frontAddr := front.LocalAddr().(*net.UDPAddr)

	for _, r := range reps {
		r := r
		waitFor(t, "replica "+r.name+" to register", func() bool {
			r.join(frontAddr) // UDP: announce until the router has us
			_, ok := router.MemberFleetSeq(r.name)
			return ok
		})
	}
	waitFor(t, "3 live members", func() bool { return router.Live() == 3 })

	// Sustained client load through the router for the whole bench. Every
	// request must be answered with a well-formed accumulator frame;
	// degraded NACKs are retried by exchange (they are the protocol's
	// documented backpressure), but a request that exhausts its attempts is
	// request loss and fails the bench.
	var (
		loadWG   sync.WaitGroup
		answered atomic.Int64
		stopLoad = make(chan struct{})
		loadErrs = make(chan error, clients)
	)
	for c := 0; c < clients; c++ {
		c := c
		loadWG.Add(1)
		go func() {
			defer loadWG.Done()
			conn, err := net.DialUDP("udp", nil, frontAddr)
			if err != nil {
				loadErrs <- err
				return
			}
			defer conn.Close()
			src := rng.New(uint64(1000 + c))
			for i := 0; ; i++ {
				select {
				case <-stopLoad:
					return
				default:
				}
				id := uint32(c*1_000_000 + i + 1)
				req := &airproto.Frame{ID: id, Data: testSymbols(d.InputLen(), uint64(id))}
				resp, err := exchange(conn, req, 2*time.Second, 0, 20*time.Millisecond, 5, src)
				if err != nil {
					loadErrs <- fmt.Errorf("client %d request %d lost: %w", c, id, err)
					return
				}
				if len(resp.Data) != d.Classes() {
					loadErrs <- fmt.Errorf("client %d request %d: %d accumulators, want %d",
						c, id, len(resp.Data), d.Classes())
					return
				}
				answered.Add(1)
			}
		}()
	}
	phaseFloor := func(n int64) {
		t.Helper()
		waitFor(t, fmt.Sprintf("%d answered requests", n), func() bool {
			select {
			case err := <-loadErrs:
				t.Fatal(err)
			default:
			}
			return answered.Load() >= n
		})
	}
	phaseFloor(int64(clients)) // the fleet is serving before the first publish

	// Phase 1: replicate a good epoch fleet-wide.
	if err := router.Publish(sealedEpoch(d, 1)); err != nil {
		t.Fatalf("publish of a healthy epoch failed: %v", err)
	}
	tid1 := router.CurrentTid()
	if tid1 == 0 {
		t.Fatal("committed publish left CurrentTid at 0")
	}
	for _, r := range reps {
		r := r
		waitFor(t, "replica "+r.name+" at fleet seq", func() bool {
			return r.srv.fleetAgent.FleetSeq() == uint64(tid1)
		})
	}
	phaseFloor(int64(clients * perPhase))

	// Phase 2: a sabotaged epoch (different random weights) must be refused
	// by the canary's held-out agreement check, and the whole fleet — the
	// canary that briefly applied it included — must roll back and converge
	// on a FRESH fleet sequence.
	if err := router.Publish(sealedEpoch(sabotagedDeployment(t, 99), 2)); err == nil {
		t.Fatal("sabotaged epoch survived the canary gate")
	}
	rtid := router.CurrentTid()
	if rtid <= tid1 {
		t.Fatalf("rollback did not advance the fleet sequence (%d -> %d)", tid1, rtid)
	}
	for _, r := range reps {
		if got := r.srv.fleetAgent.FleetSeq(); got != uint64(rtid) {
			t.Fatalf("replica %s at fleet seq %d after rollback, fleet at %d", r.name, got, rtid)
		}
	}
	phaseFloor(int64(2 * clients * perPhase))

	// Phase 3: kill a replica and publish while its corpse is still in the
	// membership. The publish evicts it when its transfer dies (or, if the
	// corpse drew the canary slot, fails fast and succeeds on a retry once
	// the heartbeats have evicted it) and commits on the survivors.
	victim := reps[2]
	victim.stop()
	var pubErr error
	waitFor(t, "post-kill publish to commit", func() bool {
		pubErr = router.Publish(sealedEpoch(d, 3))
		return pubErr == nil
	})
	waitFor(t, "victim eviction", func() bool { return router.Live() == 2 })
	tid3 := router.CurrentTid()
	for _, r := range reps[:2] {
		r := r
		waitFor(t, "survivor "+r.name+" convergence", func() bool {
			return r.srv.fleetAgent.FleetSeq() == uint64(tid3)
		})
	}
	phaseFloor(int64(3 * clients * perPhase))

	// Phase 4: a replacement replica joins cold (fleet seq 0) and must be
	// caught up to the latest committed epoch by anti-entropy, restoring
	// full strength.
	fresh := startFleetReplica(t, d, probes, 31)
	defer fresh.stop()
	waitFor(t, "replacement registration", func() bool {
		fresh.join(frontAddr)
		_, ok := router.MemberFleetSeq(fresh.name)
		return ok
	})
	waitFor(t, "replacement catch-up", func() bool {
		return fresh.srv.fleetAgent.FleetSeq() == uint64(tid3)
	})
	waitFor(t, "3 live members again", func() bool { return router.Live() == 3 })
	phaseFloor(int64(4 * clients * perPhase))

	close(stopLoad)
	loadWG.Wait()
	close(loadErrs)
	for err := range loadErrs {
		t.Error(err)
	}
	t.Logf("fleetbench: %d requests answered across kill/restart/rollback, fleet at seq %d with %d live replicas",
		answered.Load(), router.CurrentTid(), router.Live())

	for _, r := range reps[:2] {
		r.stop()
	}
}

// TestFleetCoordinatorRestartRepublishes is the coordinator-restart
// regression: a new router incarnation restarts its transfer sequence from
// 1, so its first publish reuses IDs the replicas have cached verdicts for
// AND leaves the replicas reporting fleet sequences numerically >= the new
// router's. Both used to silently break convergence — the replicas
// answered the new transfer from the stale ack cache without applying, and
// anti-entropy saw nothing to repair. The incarnation nonce must defeat
// both: the second router's publish must actually apply on every replica.
func TestFleetCoordinatorRestartRepublishes(t *testing.T) {
	d := testDeployment(t, 11)
	reps := make([]*fleetReplica, 2)
	for i := range reps {
		reps[i] = startFleetReplica(t, d, nil, uint64(40+i))
	}
	defer func() {
		for _, r := range reps {
			r.stop()
		}
	}()
	seedReplicas := func() []fleet.Replica {
		var rs []fleet.Replica
		for _, r := range reps {
			rs = append(rs, fleet.Replica{Addr: r.addr.String()})
		}
		return rs
	}
	newRouter := func(seed uint64) *fleet.Router {
		t.Helper()
		router, err := fleet.NewRouter(fleet.Config{
			Replicas:       seedReplicas(),
			ChunkBytes:     512,
			PublishTimeout: 150 * time.Millisecond,
			PublishRetries: 4,
			Seed:           seed,
			Logf:           t.Logf,
		})
		if err != nil {
			t.Fatal(err)
		}
		return router
	}

	// First incarnation commits transfer 1.
	routerA := newRouter(7)
	if err := routerA.Publish(sealedEpoch(d, 1)); err != nil {
		t.Fatalf("incarnation A publish failed: %v", err)
	}
	tidA, nonceA := routerA.CurrentTid(), routerA.Incarnation()
	for _, r := range reps {
		if seq, nonce := r.srv.fleetAgent.FleetVersion(); seq != uint64(tidA) || nonce != nonceA {
			t.Fatalf("replica %s at version (%d, %#x) after A's publish, want (%d, %#x)",
				r.name, seq, nonce, tidA, nonceA)
		}
	}
	swaps := make([]int64, len(reps))
	for i, r := range reps {
		swaps[i] = r.srv.swaps.Load()
	}
	routerA.Close()

	// The restarted coordinator reuses transfer ID 1 for a DIFFERENT epoch.
	// Every replica must reassemble and apply it — a cached tid-1 verdict
	// answered without applying leaves the fleet silently diverged.
	routerB := newRouter(8)
	defer routerB.Close()
	if routerB.Incarnation() == nonceA {
		t.Fatalf("independent incarnations drew the same nonce %#x", nonceA)
	}
	if err := routerB.Publish(sealedEpoch(d, 2)); err != nil {
		t.Fatalf("incarnation B publish failed: %v", err)
	}
	if routerB.CurrentTid() != tidA {
		t.Logf("note: B's first transfer is %d, A's was %d", routerB.CurrentTid(), tidA)
	}
	for i, r := range reps {
		seq, nonce := r.srv.fleetAgent.FleetVersion()
		if seq != uint64(routerB.CurrentTid()) || nonce != routerB.Incarnation() {
			t.Fatalf("replica %s at version (%d, %#x) after B's publish, want (%d, %#x)",
				r.name, seq, nonce, routerB.CurrentTid(), routerB.Incarnation())
		}
		if got := r.srv.swaps.Load(); got <= swaps[i] {
			t.Fatalf("replica %s swap count stuck at %d: B's epoch was answered from the stale ack cache",
				r.name, got)
		}
	}
}
