package main

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/clocksync"
	"repro/internal/ota"
)

// restoreDeployment rebuilds a servable deployment from a journaled epoch:
// ota.FromState restores the solved schedules, realized responses, and
// channel statistics bit-for-bit — zero re-training, zero re-solving — and
// the epoch's Meta carries the coarse detector's two parameters, which is
// all that is needed to re-attach the clock-sync sampler the state layer
// cannot serialize (it is a function).
func restoreDeployment(ep *checkpoint.Epoch) (*ota.Deployment, error) {
	if ep.State == nil {
		return nil, fmt.Errorf("epoch %d carries no deployment state", ep.Seq)
	}
	d, err := ota.FromState(ep.State)
	if err != nil {
		return nil, err
	}
	if ep.Meta.DetShape > 0 {
		det := clocksync.CoarseDetector{Shape: ep.Meta.DetShape, Scale: ep.Meta.DetScale}
		d = d.WithSyncSampler(clocksync.CoarseSampler(det, d.Options().SymbolRateHz))
	}
	return d, nil
}

// recoverEpoch loads the newest valid epoch for dataset ds from the
// journal, falling back across corrupt or truncated entries. A nil epoch
// with a nil error means cold start: the journal is empty or nothing in it
// decodes (each skipped entry already bumped checkpoint.corrupt). A
// dataset mismatch is an error, not a silent cold start — pointing a server
// at another dataset's state directory is an operator mistake that should
// refuse loudly rather than overwrite the journal.
func recoverEpoch(j *checkpoint.Journal, ds string) (*checkpoint.Epoch, error) {
	ep, err := j.Recover()
	if err != nil {
		if errors.Is(err, checkpoint.ErrNoEpoch) {
			return nil, nil
		}
		return nil, err
	}
	if ep.Meta.Dataset != ds {
		return nil, fmt.Errorf("journal %s holds dataset %q, not %q (use a fresh -state-dir)",
			j.Dir(), ep.Meta.Dataset, ds)
	}
	return ep, nil
}

// flusher and shutdowner are the narrow seams closeStack needs, so the
// clean-exit ordering is testable with fakes recording call order.
type flusher interface{ Close() error }

type shutdowner interface {
	Shutdown(ctx context.Context) error
}

// closeStack runs the post-drain shutdown sequence in its required order:
// first flush the epoch journal (durability before anything else dies),
// then stop the metrics sidecar (observability goes last, so the final
// counter values stay scrapeable until the journal is safely on disk).
// serve() has already drained the worker fleet by the time this runs; pass
// untyped nils for absent components.
func closeStack(journal flusher, sidecar shutdowner, logf func(string, ...interface{})) {
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	if journal != nil {
		if err := journal.Close(); err != nil {
			logf("journal: close: %v", err)
		}
	}
	if sidecar != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := sidecar.Shutdown(ctx); err != nil {
			logf("metrics sidecar: shutdown: %v", err)
		}
	}
}
