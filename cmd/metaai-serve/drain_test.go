package main

import (
	"math"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/airproto"
	"repro/internal/mobility"
	"repro/internal/rng"
)

// TestServeDrainAnswersInFlightRequests pins the shutdown ordering the serve
// loop promises: when the read loop dies, the request channel closes, the
// workers finish every request already queued (close(reqs) → wg.Wait()), and
// only then does the heal supervisor stop (close(stopHeal)). The preInfer
// hook parks both workers mid-request so the teardown races a full queue,
// and a manual heal() runs concurrently with the drain — epoch swaps during
// shutdown must lose nothing. Run under -race.
func TestServeDrainAnswersInFlightRequests(t *testing.T) {
	d := testDeployment(t, 21)
	gate := make(chan struct{})
	var parked atomic.Int64
	srv := newAirServer(serverConfig{
		deployment: d,
		// An unreachable threshold keeps the supervisor healing on every
		// tick once the margin window fills, so epoch swaps overlap both
		// serving and the drain itself.
		monitor:    mobility.NewMonitor(math.MaxFloat64, 4),
		workers:    2,
		queue:      16,
		healEvery:  5 * time.Millisecond,
		sessionSrc: rng.New(3),
		logf:       t.Logf,
		preInfer: func() {
			parked.Add(1)
			<-gate
		},
	})

	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	done := make(chan error, 1)
	go func() { done <- srv.serve(conn) }()
	client := dialServer(t, conn.LocalAddr().(*net.UDPAddr))

	const requests = 6
	for i := 1; i <= requests; i++ {
		req := &airproto.Frame{ID: uint32(i), Data: testSymbols(d.InputLen(), uint64(i))}
		out, _ := req.Marshal()
		if _, err := client.Write(out); err != nil {
			t.Fatal(err)
		}
	}

	// Wait for both workers to park mid-request, then give the read loop a
	// beat to enqueue the remaining four.
	deadline := time.Now().Add(5 * time.Second)
	for parked.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if parked.Load() < 2 {
		t.Fatal("workers never picked up the in-flight requests")
	}
	time.Sleep(100 * time.Millisecond)

	// Kill the read loop WITHOUT closing the socket: an expired read
	// deadline fails the next ReadFromUDP, which starts the drain, while
	// workers can still write replies. A concurrent manual heal races the
	// teardown on top of the supervisor's own ticks.
	healDone := make(chan struct{})
	go func() {
		srv.heal()
		close(healDone)
	}()
	if err := conn.SetReadDeadline(time.Now()); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond) // let serve reach wg.Wait() with workers parked
	close(gate)

	// Every request sent before the teardown must still be answered with a
	// data frame.
	seen := make(map[uint32]bool)
	client.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 65535)
	for len(seen) < requests {
		n, err := client.Read(buf)
		if err != nil {
			t.Fatalf("after %d/%d replies: %v", len(seen), requests, err)
		}
		resp, err := airproto.Unmarshal(buf[:n])
		if err != nil {
			continue
		}
		if resp.IsNack() {
			t.Fatalf("request %d NACKed with status %d during drain", resp.ID, resp.Code)
		}
		if resp.ID >= 1 && resp.ID <= requests {
			seen[resp.ID] = true
		}
	}

	select {
	case err := <-done:
		// The read loop died on the expired deadline; that error is the
		// expected shutdown cause, not a failure.
		if err == nil {
			t.Fatal("serve returned nil, want the deadline error that triggered the drain")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("serve never returned: drain ordering deadlocked")
	}
	<-healDone

	if got := srv.served.Load(); got != requests {
		t.Fatalf("served %d data frames, want %d (drain lost requests)", got, requests)
	}
	if srv.shed.Load() != 0 {
		t.Fatalf("shed %d requests within queue capacity", srv.shed.Load())
	}
}
