package main

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/airproto"
	"repro/internal/checkpoint"
	"repro/internal/cplx"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/mobility"
	"repro/internal/netchaos"
	"repro/internal/obs"
	"repro/internal/obs/events"
	"repro/internal/obs/trace"
	"repro/internal/ota"
	"repro/internal/rng"
)

// journalKeep bounds the state directory: every publish prunes the epoch
// journal down to this many newest entries. Two is the floor (the current
// epoch plus the rollback target); eight keeps a little history for
// post-mortems without letting the directory grow with uptime.
const journalKeep = 8

// epoch is one immutable serving generation: a deployment plus one session
// per worker. Workers resolve the current epoch per request through an
// atomic pointer, so a heal swaps the whole generation without a lock and
// without disturbing requests already running on the previous one.
type epoch struct {
	d        *ota.Deployment
	sessions []*ota.Session
}

// serverConfig assembles an airServer.
type serverConfig struct {
	// deployment is the serving deployment (possibly carrying injected
	// stuck-atom damage).
	deployment *ota.Deployment
	// injector, when non-nil, supplies the dynamic fault hooks for every
	// session and the masked-atom re-solve behind heal().
	injector *faults.Injector
	// monitor, when non-nil, arms self-healing: workers feed it decision
	// margins and the supervisor heals when it reports degradation.
	monitor *mobility.Monitor
	// workers is the number of inference goroutines (min 1).
	workers int
	// batch is the most pending requests one worker drains per wakeup and
	// accumulates as a single Session.AccumulateBatch sweep (min 1). Batch 1
	// is exactly the classic per-request path; larger batches amortize the
	// per-inference bookkeeping while keeping accumulator bits identical to
	// sequential processing.
	batch int
	// queue bounds in-flight requests; a full queue sheds load with a
	// StatusDegraded NACK instead of blocking the read loop. Defaults to
	// workers*4.
	queue int
	// healEvery is the supervisor's polling period (default 250ms).
	healEvery time.Duration
	// sessionSrc seeds the per-epoch session fleets.
	sessionSrc *rng.Source
	// journal, when non-nil, durably records every published epoch (the
	// initial deployment, each heal, each rollback) as a sealed checkpoint —
	// the crash-recovery WAL. Writes happen under healMu, entirely off the
	// request path.
	journal *checkpoint.Journal
	// meta is stamped into every journaled epoch so recovery can match the
	// dataset and rebuild the clock-sync sampler.
	meta checkpoint.Meta
	// initialReason labels the first journaled epoch: "deploy" on a cold
	// start, "recover" when the deployment was restored from the journal.
	initialReason string
	// reference, when non-nil, is the known-healthy deployment whose
	// predictions define the canary's golden outputs (defaults to
	// deployment, which is correct only when deployment itself is healthy —
	// a fault-injected server must point this at the pre-damage one).
	reference *ota.Deployment
	// canaryProbes, when non-empty, gate every heal candidate: its
	// predictions on these held-out inputs must agree with the reference's
	// on at least canaryFrac of them, or the candidate is rejected without
	// ever being published.
	canaryProbes [][]complex128
	// canaryFrac is the minimum golden-output agreement (default 0.8).
	canaryFrac float64
	// canarySeed seeds the canary evaluation sessions so the gate is
	// deterministic for a given candidate.
	canarySeed uint64
	// rollbackFrac arms the post-publication supervisor: once the margin
	// window refills after a heal, a mean below rollbackFrac times the
	// pre-heal mean rolls the server back to the previous epoch. Zero
	// disables rollback.
	rollbackFrac float64
	// admit, when non-nil, arms adaptive admission control: a brownout
	// controller that sheds a rising fraction of data frames (with a
	// StatusRetryAfter hint) when the live p99 exceeds its SLO. Control-
	// plane traffic — heartbeats, joins, epoch replication, stats, trace
	// fetches — is handled before the admission point and is never shed.
	admit *admission.Controller
	// admitEvery is the period of the p99 → controller feedback loop
	// (default 100ms). The loop reads the live serve.request.seconds p99,
	// so brownout needs obs enabled to ever engage.
	admitEvery time.Duration
	// logf receives progress lines; nil silences them.
	logf func(format string, args ...interface{})
	// preInfer, when non-nil, runs in each worker just before it processes
	// a dequeued request — a test hook for pinning requests in flight while
	// the read loop is torn down (the drain-path tests) and for slowing one
	// replica of an in-process fleet (the hedged-trace tests).
	preInfer func()
	// tracer is the tracer this server's serve.request / serve.heal spans
	// start on and KindTrace fetches read from; nil means the process-wide
	// trace.Default(). Injectable so an in-process test fleet can give each
	// replica its own retention ring, as separate processes naturally have.
	tracer *trace.Tracer
}

// airServer answers airproto frames over UDP with over-the-air inference,
// monitors its own health, and hot-swaps its deployment when degraded.
type airServer struct {
	cfg serverConfig
	cur atomic.Pointer[epoch]

	served        atomic.Int64  // data frames answered
	shed          atomic.Int64  // load-shedding NACKs sent (queue full + brownout)
	brownout      atomic.Int64  // the admission-control subset of shed
	expired       atomic.Int64  // requests dropped at dequeue past their deadline
	nacked        atomic.Int64  // bad-frame / wrong-length NACKs sent
	swaps         atomic.Int64  // epochs published after the first
	heals         atomic.Int64  // heal() invocations
	rollbacks     atomic.Int64  // published heals rolled back by the supervisor
	canaryRejects atomic.Int64  // heal candidates the canary gate refused
	epochSeq      atomic.Uint64 // journal sequence of the current epoch (0 when unjournaled)
	reqSeq        atomic.Uint64 // per-server request ordinal, the trace-ID tiebreaker
	healSeq       atomic.Uint64 // per-server heal-episode ordinal for heal traces
	inflight      atomic.Int64  // requests queued for the worker fleet (the HBQueueDepth gauge)

	// fleetAgent answers the fleet router's heartbeats with this server's
	// health vector and installs replicated epochs pushed over the wire. It
	// is always constructed — a server that never joins a fleet simply never
	// receives a fleet-control frame.
	fleetAgent *fleet.Agent

	healMu sync.Mutex // serializes heal()/rollback and guards watch
	// watch, when non-nil, is the post-publication rollback supervisor's
	// state: the margin level before the last heal and the epoch to return
	// to if the heal regresses.
	watch *healWatch
}

// healWatch is armed when a heal publishes and resolved on the first
// supervisor tick after the margin window refills with post-heal readouts.
type healWatch struct {
	preMean float64 // mean margin immediately before the heal published
	prev    *ota.Deployment
	hid     trace.ID // the heal episode's trace, for rollback correlation
}

func newAirServer(cfg serverConfig) *airServer {
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if cfg.batch < 1 {
		cfg.batch = 1
	}
	if cfg.queue <= 0 {
		cfg.queue = cfg.workers * 4
	}
	if cfg.healEvery <= 0 {
		cfg.healEvery = 250 * time.Millisecond
	}
	if cfg.sessionSrc == nil {
		cfg.sessionSrc = rng.New(1)
	}
	if cfg.canaryFrac <= 0 {
		cfg.canaryFrac = 0.8
	}
	if cfg.reference == nil {
		cfg.reference = cfg.deployment
	}
	if cfg.initialReason == "" {
		cfg.initialReason = "deploy"
	}
	if cfg.logf == nil {
		cfg.logf = func(string, ...interface{}) {}
	}
	if cfg.tracer == nil {
		cfg.tracer = trace.Default()
	}
	s := &airServer{cfg: cfg}
	s.fleetAgent = fleet.NewAgent(s.healthVector, s.applyFleetEpoch)
	s.cur.Store(&epoch{d: cfg.deployment, sessions: s.newSessions(cfg.deployment)})
	// The initial deploy's checkpoint-write correlates to the build trace,
	// which is still the most recently started trace at construction time.
	s.journalAppend(cfg.deployment, cfg.initialReason, cfg.tracer.LastActive())
	return s
}

// newSessions derives one session per worker over deployment d, threading
// the injector's dynamic fault hooks when faults are armed.
func (s *airServer) newSessions(d *ota.Deployment) []*ota.Session {
	out := make([]*ota.Session, s.cfg.workers)
	for w := range out {
		if s.cfg.injector != nil {
			out[w] = s.cfg.injector.SessionFor(d, s.cfg.sessionSrc.Split())
		} else {
			out[w] = d.NewSession(s.cfg.sessionSrc.Split())
		}
	}
	return out
}

// journalAppend durably records a published deployment when a journal is
// configured, stamping the checkpoint-write event with the episode's trace
// (the heal trace on heal/rollback publishes, the build trace on the
// initial deploy). Failures are logged, never fatal: serving beats
// durability.
func (s *airServer) journalAppend(d *ota.Deployment, reason string, tid trace.ID) {
	j := s.cfg.journal
	if j == nil {
		return
	}
	e := &checkpoint.Epoch{Reason: reason, Meta: s.cfg.meta, State: d.State()}
	if mon := s.cfg.monitor; mon != nil {
		e.Th = checkpoint.Thresholds{Threshold: mon.Threshold(), Window: mon.Window()}
	}
	seq, err := j.Append(e)
	if err != nil {
		s.cfg.logf("journal: append (%s): %v", reason, err)
		return
	}
	s.epochSeq.Store(seq)
	events.Default().EmitTraced(tid, events.CheckpointWrite, "epoch journaled",
		events.Num("epoch_seq", float64(seq)),
		events.Str("reason", reason))
	if err := j.Prune(journalKeep); err != nil {
		s.cfg.logf("journal: prune: %v", err)
	}
}

// publish swaps in a new serving generation and journals it. Callers hold
// healMu. In-flight requests keep their old epoch's sessions — the swap
// loses nothing.
func (s *airServer) publish(nd *ota.Deployment, reason string, tid trace.ID) {
	s.cur.Store(&epoch{d: nd, sessions: s.newSessions(nd)})
	s.journalAppend(nd, reason, tid)
	events.Default().EmitTraced(tid, events.Publish, "epoch published",
		events.Str("reason", reason),
		events.Num("epoch_seq", float64(s.epochSeq.Load())))
	if s.cfg.monitor != nil {
		s.cfg.monitor.Reset()
	}
	s.swaps.Add(1)
	swapCount.Inc()
}

// canaryPass validates a heal candidate before publication by comparing its
// predictions against the healthy reference's on the held-out canary probes
// (sessions seeded identically on both sides, so the check is
// deterministic). Margins cannot play this role — a scrambled schedule can
// be confidently wrong — but golden-output agreement catches exactly that.
// It returns the verdict and the observed agreement fraction (1 when no
// probes are configured) so the caller can journal the canary-verdict
// event with the number the decision turned on.
func (s *airServer) canaryPass(candidate *ota.Deployment) (bool, float64) {
	if len(s.cfg.canaryProbes) == 0 {
		return true, 1
	}
	agree := mobility.Agreement(
		candidate.SessionFromSeed(s.cfg.canarySeed),
		s.cfg.reference.SessionFromSeed(s.cfg.canarySeed),
		s.cfg.canaryProbes)
	if agree >= s.cfg.canaryFrac {
		s.cfg.logf("canary: candidate agrees with reference on %.0f%% of %d probes, publishing",
			100*agree, len(s.cfg.canaryProbes))
		return true, agree
	}
	s.cfg.logf("canary: candidate agrees with reference on only %.0f%% of %d probes (< %.0f%%), rejecting",
		100*agree, len(s.cfg.canaryProbes), 100*s.cfg.canaryFrac)
	return false, agree
}

// heal publishes a recovered epoch: the masked-atom re-solve when the
// injector still carries unhealed stuck damage, a recalibration republish
// otherwise. Re-solve candidates are canary-validated before publication and
// watched after it — see canaryPass and checkRollback.
func (s *airServer) heal() {
	s.healMu.Lock()
	defer s.healMu.Unlock()
	s.heals.Add(1)
	healCount.Inc()
	// The heal episode gets its own trace: the preview's masked re-solve
	// and the canary run show up as spans, and the heal events it emits
	// tail-retain any request trace open across the swap. Events are
	// stamped with hid explicitly — LastActive would name whichever
	// concurrent request trace started last, not this episode.
	hid := trace.Derive(0x4ea1, s.healSeq.Add(1))
	hroot := s.cfg.tracer.Start("serve.heal", hid)
	defer hroot.Finish(0)
	prev := s.cur.Load().d
	var nd *ota.Deployment
	if in := s.cfg.injector; in != nil && !in.Healed() {
		candidate, err := in.PreviewHealSpan(hroot)
		if err != nil {
			s.cfg.logf("heal: masked re-solve failed: %v", err)
			return
		}
		events.Default().EmitTraced(hid, events.HealPreview, "heal candidate re-solved",
			events.Num("stuck_atoms", float64(len(in.StuckAtoms()))),
			events.Num("layer", float64(in.Layer())))
		csp := hroot.Child("serve.canary")
		pass, agree := s.canaryPass(candidate)
		csp.SetNum("agreement", agree)
		csp.End()
		verdict := "accept"
		if !pass {
			verdict = "reject"
		}
		events.Default().EmitTraced(hid, events.CanaryVerdict, "canary judged heal candidate",
			events.Str("verdict", verdict),
			events.Num("agreement", agree),
			events.Num("min_agreement", s.cfg.canaryFrac))
		if !pass {
			s.canaryRejects.Add(1)
			canaryRejectCount.Inc()
			if s.cfg.monitor != nil {
				s.cfg.monitor.Reset() // refill before the next verdict; don't hot-loop
			}
			return
		}
		in.CommitHeal(candidate)
		nd = candidate
		s.cfg.logf("heal: re-solved schedule around %d stuck atoms (residual %.4f)",
			len(in.StuckAtoms()), in.ResidualError())
	} else {
		// Nothing left to re-solve: republish a recalibration at the
		// current geometry so transient degradation gets a fresh epoch.
		cur := prev
		nd = cur.Recomputed(cur.Options().Geometry)
		s.cfg.logf("heal: republished recalibrated deployment")
	}
	// Arm the rollback watch with the pre-heal margin level so the
	// supervisor can tell whether the published heal actually helped.
	if s.cfg.monitor != nil && s.cfg.rollbackFrac > 0 {
		if preMean, ok := s.cfg.monitor.Mean(); ok {
			s.watch = &healWatch{preMean: preMean, prev: prev, hid: hid}
		}
	}
	s.publish(nd, "heal", hid)
}

// checkRollback resolves an armed heal watch: once the monitor window has
// refilled with post-heal readouts, a mean margin below rollbackFrac times
// the pre-heal level means the heal regressed the service — republish the
// previous journaled epoch (with fresh sessions; the old ones may still be
// running in-flight requests) and count the rollback.
func (s *airServer) checkRollback() {
	if s.cfg.monitor == nil || s.cfg.rollbackFrac <= 0 {
		return
	}
	s.healMu.Lock()
	defer s.healMu.Unlock()
	w := s.watch
	if w == nil {
		return
	}
	postMean, ok := s.cfg.monitor.Mean()
	if !ok {
		return // window still refilling after the publish
	}
	s.watch = nil
	if postMean >= s.cfg.rollbackFrac*w.preMean {
		s.cfg.logf("heal holding: margin %.4f vs %.4f pre-heal", postMean, w.preMean)
		return
	}
	s.rollbacks.Add(1)
	rollbackCount.Inc()
	s.cfg.logf("rollback: post-heal margin %.4f fell below %.0f%% of pre-heal %.4f, restoring previous epoch",
		postMean, 100*s.cfg.rollbackFrac, w.preMean)
	events.Default().EmitTraced(w.hid, events.Rollback, "regressed heal rolled back",
		events.Num("post_margin", postMean),
		events.Num("pre_margin", w.preMean),
		events.Num("min_frac", s.cfg.rollbackFrac))
	s.publish(w.prev, "rollback", w.hid)
}

// statsFrame answers a KindStats request: the serving counters and current
// epoch sequence, as the real parts of a StatsVector-indexed vector.
func (s *airServer) statsFrame(id uint32) *airproto.Frame {
	data := make([]complex128, airproto.StatsVectorLen)
	data[airproto.StatServed] = complex(float64(s.served.Load()), 0)
	data[airproto.StatHeals] = complex(float64(s.heals.Load()), 0)
	data[airproto.StatSwaps] = complex(float64(s.swaps.Load()), 0)
	data[airproto.StatRollbacks] = complex(float64(s.rollbacks.Load()), 0)
	data[airproto.StatCanaryRejects] = complex(float64(s.canaryRejects.Load()), 0)
	data[airproto.StatEpochSeq] = complex(float64(s.epochSeq.Load()), 0)
	data[airproto.StatShed] = complex(float64(s.shed.Load()), 0)
	data[airproto.StatExpired] = complex(float64(s.expired.Load()), 0)
	return &airproto.Frame{Kind: airproto.KindStats, Code: airproto.StatsVersionReplica, ID: id, Data: data}
}

// healthVector supplies the gauges a fleet heartbeat reply carries: the
// replicated-epoch (sequence, coordinator nonce) pair — the fleet's
// convergence variable — the local journal epoch, queue pressure, and the
// serving counters. Every read is an atomic load, so the read loop answers
// heartbeats without touching a lock.
func (s *airServer) healthVector() []float64 {
	hv := make([]float64, airproto.HBVectorLen)
	fleetSeq, fleetNonce := s.fleetAgent.FleetVersion()
	hv[airproto.HBFleetSeq] = float64(fleetSeq)
	hv[airproto.HBFleetNonce] = float64(fleetNonce)
	hv[airproto.HBEpochSeq] = float64(s.epochSeq.Load())
	hv[airproto.HBQueueDepth] = float64(s.inflight.Load())
	hv[airproto.HBServed] = float64(s.served.Load())
	hv[airproto.HBShed] = float64(s.shed.Load())
	hv[airproto.HBNacked] = float64(s.nacked.Load())
	hv[airproto.HBHeals] = float64(s.heals.Load())
	return hv
}

// applyFleetEpoch installs one epoch replicated by the fleet coordinator:
// decode the sealed checkpoint, refuse a dataset mismatch, rebuild the
// deployment, and — on a canary push — measure prediction agreement against
// the CURRENT serving deployment on the held-out probes so the coordinator
// can gate the fleet-wide fan-out on a number this replica actually
// observed. The publish itself reuses the heal path's machinery (fresh
// sessions, journal append, publish event) under healMu, and the replicated
// epoch becomes the new canary reference: the fleet's truth supersedes
// whatever this replica was deployed with.
func (s *airServer) applyFleetEpoch(sealed []byte, mode uint8, tid uint32) (float64, error) {
	ep, err := checkpoint.DecodeEpoch(sealed)
	if err != nil {
		return 0, err
	}
	if ds := s.cfg.meta.Dataset; ds != "" && ep.Meta.Dataset != "" && ep.Meta.Dataset != ds {
		return 0, fmt.Errorf("replicated epoch holds dataset %q, serving %q", ep.Meta.Dataset, ds)
	}
	nd, err := restoreDeployment(ep)
	if err != nil {
		return 0, err
	}
	agreement := 1.0
	if mode == airproto.PushCanary && len(s.cfg.canaryProbes) > 0 {
		agreement = mobility.Agreement(
			nd.SessionFromSeed(s.cfg.canarySeed),
			s.cur.Load().d.SessionFromSeed(s.cfg.canarySeed),
			s.cfg.canaryProbes)
	}
	reason := fleet.ReasonReplicate
	if mode == airproto.PushRollback {
		reason = fleet.ReasonRollback
	}
	s.healMu.Lock()
	defer s.healMu.Unlock()
	// The replicated epoch supersedes any armed local rollback watch (the
	// pre-heal margin it captured described a deployment that no longer
	// serves) and becomes the reference future heal candidates are judged
	// against.
	s.watch = nil
	s.cfg.reference = nd
	s.publish(nd, reason, trace.Derive(0xf1ee7, uint64(tid)))
	s.cfg.logf("fleet: %s epoch %d installed (journal seq %d)", reason, tid, s.epochSeq.Load())
	return agreement, nil
}

// request is one validated inbound frame awaiting inference.
type request struct {
	frame *airproto.Frame
	from  *net.UDPAddr
	// expires is the wall-clock deadline derived from the frame's budget at
	// enqueue; zero means the client set no deadline. Checked again at
	// dequeue: a request that can no longer make its deadline is answered
	// with StatusExpired instead of burning inference time.
	expires time.Time
	// t times the request from enqueue to reply written (zero, and
	// therefore inert, while obs is disabled).
	t obs.Timer
	// span is the request's root trace span (nil while tracing is
	// disabled); the worker hangs the inference's stage spans under it and
	// finishes it when the reply is written.
	span *trace.Span
}

// startRequestTrace opens the root span for one inbound data frame. The
// trace ID derives from the client's request ID plus the server's arrival
// ordinal — stable identifiers, so a fixed-seed run traces identically —
// and the span carries the airproto request ID and the serving epoch. A
// frame that arrived with router trace context (rid != 0) instead joins
// the ROUTER'S trace: the replica's serve.request span parents under the
// router's fleet.hop span, so one fetch yields the whole cross-hop story.
// The arrival ordinal bumps either way — local trace IDs must not depend
// on whether the previous request came through a router.
func (s *airServer) startRequestTrace(f *airproto.Frame, rid, parent uint64) *trace.Span {
	seq := s.reqSeq.Add(1)
	var sp *trace.Span
	if rid != 0 {
		sp = s.cfg.tracer.StartRemote("serve.request", trace.ID(rid), trace.ID(parent))
	} else {
		sp = s.cfg.tracer.Start("serve.request", trace.Derive(0x5e12e, uint64(f.ID), seq))
	}
	sp.SetNum("request_id", float64(f.ID))
	sp.SetNum("epoch_seq", float64(s.epochSeq.Load()))
	return sp
}

// traceFrame answers a KindTrace request: the retained trace's Chrome
// JSON export packed into the vector payload (see airproto.PackBytes), or
// a StatusNoTrace NACK when tracing is off or the ID is not retained.
func (s *airServer) traceFrame(f *airproto.Frame) *airproto.Frame {
	tr, flags := s.cfg.tracer.Get(trace.ID(f.TraceID()))
	if tr == nil {
		return airproto.Nack(f.ID, airproto.StatusNoTrace, 0)
	}
	// The request's Code carries export flags: the normalize bit asks for
	// deterministic timestamps, the form the stitch gate diffs byte-for-byte.
	body := trace.MarshalJSON(tr, flags, trace.ExportOptions{
		Normalize: f.Code&airproto.TraceFlagNormalize != 0,
	})
	data, n := airproto.PackBytes(body)
	var code uint8
	if n < len(body) {
		code = airproto.StatusNoTrace // truncated: only the first n bytes fit
	}
	return &airproto.Frame{Kind: airproto.KindTrace, Code: code, ID: f.ID, Label: int32(n), Data: data}
}

// serve answers frames on conn until the connection is closed (the caller
// owns shutdown: close conn to stop). It runs the worker fleet, the read
// loop, and — when a monitor is armed — the self-healing supervisor. conn
// is the netchaos.PacketConn surface: a bare *net.UDPConn in production,
// or a chaos-wrapped one under `-chaos-*` flags and in the chaosgate soak.
func (s *airServer) serve(conn netchaos.PacketConn) error {
	reqs := make(chan request, s.cfg.queue)
	var wg sync.WaitGroup
	for w := 0; w < s.cfg.workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.worker(conn, w, reqs)
		}()
	}

	stopHeal := make(chan struct{})
	var healWG sync.WaitGroup
	if ac := s.cfg.admit; ac != nil {
		// The brownout feedback loop: feed the live p99 into the AIMD
		// controller off the read loop. The admit decision itself stays on
		// the hot path (lock-free, allocation-free); only the policy update
		// ticks here.
		every := s.cfg.admitEvery
		if every <= 0 {
			every = 100 * time.Millisecond
		}
		healWG.Add(1)
		go func() {
			defer healWG.Done()
			t := time.NewTicker(every)
			defer t.Stop()
			for {
				select {
				case <-stopHeal:
					return
				case <-t.C:
					ac.Observe(requestP99())
					admitFraction.Set(ac.Fraction() * 1e6)
				}
			}
		}()
	}
	if s.cfg.monitor != nil {
		healWG.Add(1)
		go func() {
			defer healWG.Done()
			t := time.NewTicker(s.cfg.healEvery)
			defer t.Stop()
			for {
				select {
				case <-stopHeal:
					return
				case <-t.C:
					// A pending rollback watch resolves first: a regressed
					// heal must be rolled back, not "healed" again on top.
					s.checkRollback()
					if s.cfg.monitor.Degraded() {
						mean, _ := s.cfg.monitor.Mean()
						s.cfg.logf("monitor: margin %.4f below threshold %.4f, healing",
							mean, s.cfg.monitor.Threshold())
						s.heal()
					}
				}
			}
		}()
	}

	// Read buffers are pooled per request: airproto.Unmarshal copies the
	// symbol payload out, so a buffer returns to the pool as soon as the
	// frame is parsed.
	bufs := sync.Pool{New: func() interface{} { return make([]byte, 65535) }}
	var readErr error
	for {
		buf := bufs.Get().([]byte)
		n, from, err := conn.ReadFromUDP(buf)
		if err != nil {
			bufs.Put(buf) //nolint:staticcheck // fixed-size buffer
			readErr = err
			break
		}
		frame, err := airproto.Unmarshal(buf[:n])
		bufs.Put(buf) //nolint:staticcheck // fixed-size buffer
		if err != nil {
			// The sender gets an explicit rejection instead of silence; the
			// frame did not parse, so no request ID is available to echo.
			s.cfg.logf("bad frame from %s: %v", from, err)
			s.nack(conn, from, airproto.Nack(0, airproto.StatusBadFrame, 0))
			continue
		}
		if frame.IsNack() {
			continue // never answer a status frame with a status frame
		}
		// A router-forwarded data frame carries its distributed-trace context
		// as trailing samples under KindDataTraced — which sorts ABOVE
		// KindHeartbeat, so the strip (restoring KindData) must happen before
		// the fleet-control dispatch or the frame would be swallowed there.
		rid, parentSpan, _ := airproto.StripTraceContext(frame)
		if frame.Kind >= airproto.KindHeartbeat {
			// Fleet-control frames (router heartbeats, chunked epoch pushes,
			// join replies) are answered inline: a heartbeat reply is a
			// handful of atomic loads and a chunk ack is a copy. The one
			// expensive case — the final chunk's apply — happens once per
			// fleet publication, and the kernel buffers data frames for the
			// few milliseconds it takes.
			if resp, ok := s.fleetAgent.HandleFrame(frame); ok {
				if out, err := resp.Marshal(); err == nil {
					if _, err := conn.WriteToUDP(out, from); err != nil {
						s.cfg.logf("fleet reply to %s: %v", from, err)
					}
				}
			}
			continue
		}
		if frame.Kind == airproto.KindStats {
			// Counter reads are cheap; answer inline off the read loop.
			if out, err := s.statsFrame(frame.ID).Marshal(); err == nil {
				if _, err := conn.WriteToUDP(out, from); err != nil {
					s.cfg.logf("stats reply to %s: %v", from, err)
				}
			}
			continue
		}
		if frame.Kind == airproto.KindTrace {
			// A ring lookup plus an export render; also off the read loop.
			if out, err := s.traceFrame(frame).Marshal(); err == nil {
				if _, err := conn.WriteToUDP(out, from); err != nil {
					s.cfg.logf("trace reply to %s: %v", from, err)
				}
			}
			continue
		}
		// Adaptive admission: everything above this point — fleet control,
		// stats, trace fetches — is never shed; only data frames brown out,
		// and they get an explicit RetryAfter hint so clients desynchronize
		// their retries instead of hammering a server already over SLO. The
		// check runs before the trace span opens: under overload the shed
		// path should cost as little as possible.
		if ac := s.cfg.admit; ac != nil && !ac.Admit() {
			s.shed.Add(1)
			s.brownout.Add(1)
			shedCount.Inc()
			brownoutShedCount.Inc()
			s.nack(conn, from, airproto.RetryAfterNack(frame.ID, ac.RetryAfter()))
			continue
		}
		sp := s.startRequestTrace(frame, rid, parentSpan)
		u := s.cur.Load().d.InputLen()
		if len(frame.Data) != u {
			s.cfg.logf("frame %d from %s: %d symbols, deployed for U=%d", frame.ID, from, len(frame.Data), u)
			s.nack(conn, from, airproto.Nack(frame.ID, airproto.StatusWrongLen, int32(u)))
			sp.SetStr("outcome", "nack_wrong_len")
			sp.Finish(trace.FlagNack)
			continue
		}
		var expires time.Time
		if d := frame.Deadline(); d > 0 {
			expires = time.Now().Add(d)
		}
		select {
		case reqs <- request{frame: frame, from: from, expires: expires, t: obs.StartTimer(), span: sp}:
			queueDepth.Add(1)
			s.inflight.Add(1)
		default:
			// Queue full: shed load explicitly. The client distinguishes
			// this retryable NACK from a malformed-request rejection.
			s.shed.Add(1)
			shedCount.Inc()
			s.nack(conn, from, airproto.Nack(frame.ID, airproto.StatusDegraded, 0))
			sp.SetStr("outcome", "shed")
			sp.Finish(trace.FlagShed)
		}
	}

	close(reqs) // drain: let in-flight requests finish
	wg.Wait()
	close(stopHeal)
	healWG.Wait()
	return readErr
}

// udpWriter is the reply surface workers write to — *net.UDPConn in
// production, an in-memory stub in the zero-alloc steady-state test.
type udpWriter interface {
	WriteToUDP(b []byte, addr *net.UDPAddr) (int, error)
}

// workerScratch bundles one worker's reusable buffers: the drained batch,
// the validated run and its input views, the per-request accumulators, the
// magnitude scratch the monitor consumes, and the reply frame plus marshal
// buffer. Everything is reused across wakeups, so a steady-state worker
// loop allocates nothing.
type workerScratch struct {
	batch []request
	run   []request
	xs    [][]complex128
	accs  []cplx.Vec
	mags  []float64
	out   []byte
	resp  airproto.Frame
}

// scratchPool recycles worker scratch across worker lifetimes — workers are
// long-lived, but tests and fleet restarts construct servers repeatedly.
var scratchPool = sync.Pool{New: func() interface{} { return new(workerScratch) }}

// worker consumes requests on its own per-epoch session, draining up to
// cfg.batch pending requests per wakeup from the bounded queue — the
// natural batching point: under light load every batch has size 1 (latency
// unchanged), and under pressure the queue's depth becomes batched sweeps.
// The epoch pointer is resolved per batch, so a heal takes effect on the
// next dequeue; sessions are indexed by worker, so no session is ever
// shared.
func (s *airServer) worker(conn udpWriter, w int, reqs <-chan request) {
	sc := scratchPool.Get().(*workerScratch)
	defer scratchPool.Put(sc)
	for r := range reqs {
		queueDepth.Add(-1)
		s.inflight.Add(-1)
		sc.batch = append(sc.batch[:0], r)
	drain:
		for len(sc.batch) < s.cfg.batch {
			select {
			case r2, ok := <-reqs:
				if !ok {
					break drain
				}
				queueDepth.Add(-1)
				s.inflight.Add(-1)
				sc.batch = append(sc.batch, r2)
			default:
				break drain
			}
		}
		s.processBatch(conn, w, sc)
	}
}

// processBatch runs one drained batch through worker w's session and writes
// the replies. Requests are accumulated strictly in dequeue order on the
// session's single random stream, so a batch of n produces bit-identical
// accumulators to n sequential single-request wakeups.
func (s *airServer) processBatch(conn udpWriter, w int, sc *workerScratch) {
	if s.cfg.preInfer != nil {
		for range sc.batch {
			s.cfg.preInfer()
		}
	}
	ep := s.cur.Load()
	u := ep.d.InputLen()
	// Re-validate the symbol count against the epoch resolved NOW: the read
	// loop validated against the epoch at enqueue time, and a hot swap that
	// changes U between enqueue and dequeue would otherwise panic the
	// session (killing the worker and silently dropping everything queued
	// behind the request). A swapped-out length gets the same explicit
	// StatusWrongLen the read loop sends.
	sc.run = sc.run[:0]
	sc.xs = sc.xs[:0]
	for _, r := range sc.batch {
		// Deadline check at dequeue, batch drain included: a request whose
		// budget ran out while it sat in the queue (or crossed the wire) is
		// answered with StatusExpired before any inference is spent on it —
		// the goal-oriented drop. Requests without a deadline skip the clock
		// read entirely, keeping the steady-state loop allocation-free.
		if !r.expires.IsZero() {
			if now := time.Now(); now.After(r.expires) {
				s.expired.Add(1)
				expiredCount.Inc()
				s.nack(conn, r.from, airproto.ExpiredNack(r.frame.ID, now.Sub(r.expires)))
				r.span.SetStr("outcome", "expired")
				r.span.Finish(trace.FlagShed)
				continue
			}
		}
		if len(r.frame.Data) != u {
			s.cfg.logf("frame %d: %d symbols, deployed for U=%d after epoch swap", r.frame.ID, len(r.frame.Data), u)
			s.nack(conn, r.from, airproto.Nack(r.frame.ID, airproto.StatusWrongLen, int32(u)))
			r.span.SetStr("outcome", "nack_wrong_len")
			r.span.Finish(trace.FlagNack)
			continue
		}
		sc.run = append(sc.run, r)
		sc.xs = append(sc.xs, r.frame.Data)
	}
	bsz := len(sc.run)
	if bsz == 0 {
		return
	}
	classes := ep.d.Classes()
	if cap(sc.accs) < bsz {
		grown := make([]cplx.Vec, bsz)
		copy(grown, sc.accs[:cap(sc.accs)])
		sc.accs = grown
	}
	sc.accs = sc.accs[:bsz]
	for b := range sc.accs {
		if len(sc.accs[b]) != classes {
			sc.accs[b] = make(cplx.Vec, classes)
		}
	}
	sess := ep.sessions[w]
	if bsz == 1 {
		// Single request: the classic path, span-parented per request —
		// bit-identical to pre-batching serving in spans as well as bits.
		r := sc.run[0]
		r.span.SetNum("worker", float64(w))
		r.span.SetNum("batch", 1)
		sess.SetSpan(r.span)
		sess.AccumulateInto(r.frame.Data, sc.accs[0])
		sess.SetSpan(nil)
	} else {
		sess.AccumulateBatch(sc.xs, sc.accs)
	}
	mon := s.cfg.monitor
	for b, r := range sc.run {
		acc := sc.accs[b]
		if mon != nil {
			sc.mags = cplx.AbsInto(sc.mags, acc)
			mon.Observe(sc.mags)
		}
		if bsz > 1 {
			r.span.SetNum("worker", float64(w))
			r.span.SetNum("batch", float64(bsz))
		}
		sc.resp = airproto.Frame{ID: r.frame.ID, Label: r.frame.Label, Data: acc}
		out, err := sc.resp.MarshalAppend(sc.out[:0])
		if err != nil {
			s.cfg.logf("frame %d: %v", r.frame.ID, err)
			r.span.SetStr("outcome", "marshal_error")
			r.span.Finish(trace.FlagError)
			continue
		}
		sc.out = out
		// UDPConn writes are goroutine-safe; replies interleave freely.
		if _, err := conn.WriteToUDP(out, r.from); err != nil {
			s.cfg.logf("reply to %s: %v", r.from, err)
			r.span.Finish(trace.FlagError)
			continue
		}
		servedCount.Inc()
		r.t.ObserveInto(reqSeconds)
		r.span.Finish(0)
		if total := s.served.Add(1); total%50 == 0 {
			s.cfg.logf("served %d transmissions", total)
		}
	}
}

func (s *airServer) nack(conn udpWriter, to *net.UDPAddr, f *airproto.Frame) {
	// Shed (queue-full, brownout) and expired verdicts have their own
	// counters; nacked counts protocol rejections the client should fix.
	switch f.Code {
	case airproto.StatusDegraded, airproto.StatusRetryAfter, airproto.StatusExpired:
	default:
		s.nacked.Add(1)
		nackedCount.Inc()
	}
	out, err := f.Marshal()
	if err != nil {
		return
	}
	if _, err := conn.WriteToUDP(out, to); err != nil {
		s.cfg.logf("nack to %s: %v", to, err)
	}
}
