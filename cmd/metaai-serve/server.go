package main

import (
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/airproto"
	"repro/internal/faults"
	"repro/internal/mobility"
	"repro/internal/obs"
	"repro/internal/ota"
	"repro/internal/rng"
)

// epoch is one immutable serving generation: a deployment plus one session
// per worker. Workers resolve the current epoch per request through an
// atomic pointer, so a heal swaps the whole generation without a lock and
// without disturbing requests already running on the previous one.
type epoch struct {
	d        *ota.Deployment
	sessions []*ota.Session
}

// serverConfig assembles an airServer.
type serverConfig struct {
	// deployment is the serving deployment (possibly carrying injected
	// stuck-atom damage).
	deployment *ota.Deployment
	// injector, when non-nil, supplies the dynamic fault hooks for every
	// session and the masked-atom re-solve behind heal().
	injector *faults.Injector
	// monitor, when non-nil, arms self-healing: workers feed it decision
	// margins and the supervisor heals when it reports degradation.
	monitor *mobility.Monitor
	// workers is the number of inference goroutines (min 1).
	workers int
	// queue bounds in-flight requests; a full queue sheds load with a
	// StatusDegraded NACK instead of blocking the read loop. Defaults to
	// workers*4.
	queue int
	// healEvery is the supervisor's polling period (default 250ms).
	healEvery time.Duration
	// sessionSrc seeds the per-epoch session fleets.
	sessionSrc *rng.Source
	// logf receives progress lines; nil silences them.
	logf func(format string, args ...interface{})
	// preInfer, when non-nil, runs in each worker just before it processes
	// a dequeued request — a test hook for pinning requests in flight while
	// the read loop is torn down (the drain-path tests).
	preInfer func()
}

// airServer answers airproto frames over UDP with over-the-air inference,
// monitors its own health, and hot-swaps its deployment when degraded.
type airServer struct {
	cfg serverConfig
	cur atomic.Pointer[epoch]

	served atomic.Int64 // data frames answered
	shed   atomic.Int64 // StatusDegraded NACKs sent (queue full)
	nacked atomic.Int64 // bad-frame / wrong-length NACKs sent
	swaps  atomic.Int64 // epochs published after the first

	healMu sync.Mutex // serializes heal() against itself
}

func newAirServer(cfg serverConfig) *airServer {
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if cfg.queue <= 0 {
		cfg.queue = cfg.workers * 4
	}
	if cfg.healEvery <= 0 {
		cfg.healEvery = 250 * time.Millisecond
	}
	if cfg.sessionSrc == nil {
		cfg.sessionSrc = rng.New(1)
	}
	if cfg.logf == nil {
		cfg.logf = func(string, ...interface{}) {}
	}
	s := &airServer{cfg: cfg}
	s.cur.Store(&epoch{d: cfg.deployment, sessions: s.newSessions(cfg.deployment)})
	return s
}

// newSessions derives one session per worker over deployment d, threading
// the injector's dynamic fault hooks when faults are armed.
func (s *airServer) newSessions(d *ota.Deployment) []*ota.Session {
	out := make([]*ota.Session, s.cfg.workers)
	for w := range out {
		if s.cfg.injector != nil {
			out[w] = s.cfg.injector.SessionFor(d, s.cfg.sessionSrc.Split())
		} else {
			out[w] = d.NewSession(s.cfg.sessionSrc.Split())
		}
	}
	return out
}

// heal publishes a recovered epoch: the masked-atom re-solve when the
// injector still carries unhealed stuck damage, a recalibration republish
// otherwise. In-flight requests keep their old epoch's sessions — the swap
// loses nothing.
func (s *airServer) heal() {
	s.healMu.Lock()
	defer s.healMu.Unlock()
	healCount.Inc()
	var nd *ota.Deployment
	if in := s.cfg.injector; in != nil && !in.Healed() {
		healed, err := in.Heal()
		if err != nil {
			s.cfg.logf("heal: masked re-solve failed: %v", err)
			return
		}
		nd = healed
		s.cfg.logf("heal: re-solved schedule around %d stuck atoms (residual %.4f)",
			len(in.StuckAtoms()), in.ResidualError())
	} else {
		// Nothing left to re-solve: republish a recalibration at the
		// current geometry so transient degradation gets a fresh epoch.
		cur := s.cur.Load().d
		nd = cur.Recomputed(cur.Options().Geometry)
		s.cfg.logf("heal: republished recalibrated deployment")
	}
	s.cur.Store(&epoch{d: nd, sessions: s.newSessions(nd)})
	if s.cfg.monitor != nil {
		s.cfg.monitor.Reset()
	}
	s.swaps.Add(1)
	swapCount.Inc()
}

// request is one validated inbound frame awaiting inference.
type request struct {
	frame *airproto.Frame
	from  *net.UDPAddr
	// t times the request from enqueue to reply written (zero, and
	// therefore inert, while obs is disabled).
	t obs.Timer
}

// serve answers frames on conn until the connection is closed (the caller
// owns shutdown: close conn to stop). It runs the worker fleet, the read
// loop, and — when a monitor is armed — the self-healing supervisor.
func (s *airServer) serve(conn *net.UDPConn) error {
	reqs := make(chan request, s.cfg.queue)
	var wg sync.WaitGroup
	for w := 0; w < s.cfg.workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.worker(conn, w, reqs)
		}()
	}

	stopHeal := make(chan struct{})
	var healWG sync.WaitGroup
	if s.cfg.monitor != nil {
		healWG.Add(1)
		go func() {
			defer healWG.Done()
			t := time.NewTicker(s.cfg.healEvery)
			defer t.Stop()
			for {
				select {
				case <-stopHeal:
					return
				case <-t.C:
					if s.cfg.monitor.Degraded() {
						mean, _ := s.cfg.monitor.Mean()
						s.cfg.logf("monitor: margin %.4f below threshold %.4f, healing",
							mean, s.cfg.monitor.Threshold())
						s.heal()
					}
				}
			}
		}()
	}

	// Read buffers are pooled per request: airproto.Unmarshal copies the
	// symbol payload out, so a buffer returns to the pool as soon as the
	// frame is parsed.
	bufs := sync.Pool{New: func() interface{} { return make([]byte, 65535) }}
	var readErr error
	for {
		buf := bufs.Get().([]byte)
		n, from, err := conn.ReadFromUDP(buf)
		if err != nil {
			bufs.Put(buf) //nolint:staticcheck // fixed-size buffer
			readErr = err
			break
		}
		frame, err := airproto.Unmarshal(buf[:n])
		bufs.Put(buf) //nolint:staticcheck // fixed-size buffer
		if err != nil {
			// The sender gets an explicit rejection instead of silence; the
			// frame did not parse, so no request ID is available to echo.
			s.cfg.logf("bad frame from %s: %v", from, err)
			s.nack(conn, from, airproto.Nack(0, airproto.StatusBadFrame, 0))
			continue
		}
		if frame.IsNack() {
			continue // never answer a status frame with a status frame
		}
		u := s.cur.Load().d.InputLen()
		if len(frame.Data) != u {
			s.cfg.logf("frame %d from %s: %d symbols, deployed for U=%d", frame.ID, from, len(frame.Data), u)
			s.nack(conn, from, airproto.Nack(frame.ID, airproto.StatusWrongLen, int32(u)))
			continue
		}
		select {
		case reqs <- request{frame: frame, from: from, t: obs.StartTimer()}:
			queueDepth.Add(1)
		default:
			// Queue full: shed load explicitly. The client distinguishes
			// this retryable NACK from a malformed-request rejection.
			s.shed.Add(1)
			shedCount.Inc()
			s.nack(conn, from, airproto.Nack(frame.ID, airproto.StatusDegraded, 0))
		}
	}

	close(reqs) // drain: let in-flight requests finish
	wg.Wait()
	close(stopHeal)
	healWG.Wait()
	return readErr
}

// worker consumes requests on its own per-epoch session. The epoch pointer
// is resolved per request, so a heal takes effect on the next dequeue;
// sessions are indexed by worker, so no session is ever shared.
func (s *airServer) worker(conn *net.UDPConn, w int, reqs <-chan request) {
	for r := range reqs {
		queueDepth.Add(-1)
		if s.cfg.preInfer != nil {
			s.cfg.preInfer()
		}
		ep := s.cur.Load()
		acc := ep.sessions[w].Accumulate(r.frame.Data)
		if mon := s.cfg.monitor; mon != nil {
			mags := make([]float64, len(acc))
			for i, v := range acc {
				mags[i] = math.Hypot(real(v), imag(v))
			}
			mon.Observe(mags)
		}
		resp := &airproto.Frame{ID: r.frame.ID, Label: r.frame.Label, Data: acc}
		out, err := resp.Marshal()
		if err != nil {
			s.cfg.logf("frame %d: %v", r.frame.ID, err)
			continue
		}
		// UDPConn writes are goroutine-safe; replies interleave freely.
		if _, err := conn.WriteToUDP(out, r.from); err != nil {
			s.cfg.logf("reply to %s: %v", r.from, err)
			continue
		}
		servedCount.Inc()
		r.t.ObserveInto(reqSeconds)
		if n := s.served.Add(1); n%50 == 0 {
			s.cfg.logf("served %d transmissions", n)
		}
	}
}

func (s *airServer) nack(conn *net.UDPConn, to *net.UDPAddr, f *airproto.Frame) {
	if f.Code != airproto.StatusDegraded {
		s.nacked.Add(1)
		nackedCount.Inc()
	}
	out, err := f.Marshal()
	if err != nil {
		return
	}
	if _, err := conn.WriteToUDP(out, to); err != nil {
		s.cfg.logf("nack to %s: %v", to, err)
	}
}
