package main

import (
	"context"
	"math"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/airproto"
	"repro/internal/checkpoint"
	"repro/internal/cplx"
	"repro/internal/faults"
	"repro/internal/mobility"
	"repro/internal/obs"
	"repro/internal/ota"
	"repro/internal/rng"
)

// serveAccumBits runs a deterministic session over n synthetic inputs and
// returns the raw IEEE-754 bit patterns of every accumulator. Two
// deployments that produce equal bit vectors are indistinguishable to every
// client — the recovery acceptance criterion.
func serveAccumBits(t *testing.T, d *ota.Deployment, n int) []uint64 {
	t.Helper()
	sess := d.SessionFromSeed(0xb175)
	src := rng.New(0x9e0)
	var bits []uint64
	for k := 0; k < n; k++ {
		x := make([]complex128, d.InputLen())
		for i := range x {
			x[i] = cplx.Expi(src.Phase())
		}
		for _, v := range sess.Accumulate(x) {
			bits = append(bits, math.Float64bits(real(v)), math.Float64bits(imag(v)))
		}
	}
	return bits
}

func assertSameBits(t *testing.T, got, want []uint64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("accumulator streams differ in length: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("accumulator bits diverge at %d: %#x vs %#x", i, got[i], want[i])
		}
	}
}

func probeInputs(u, n int, seed uint64) [][]complex128 {
	src := rng.New(seed)
	out := make([][]complex128, n)
	for k := range out {
		x := make([]complex128, u)
		for i := range x {
			x[i] = cplx.Expi(src.Phase())
		}
		out[k] = x
	}
	return out
}

// TestKillAndRecoverBitIdentity is the crash-recovery acceptance test: a
// server journals its published epoch, dies without any shutdown ceremony
// (journal appends are individually durable — abandoning the process IS the
// kill), and a restarted process recovers the epoch from disk and serves
// bit-identical accumulators with zero schedule re-solves. Run under -race:
// recovery shares nothing with the dead server but the directory.
func TestKillAndRecoverBitIdentity(t *testing.T) {
	dir := t.TempDir()
	d := testDeployment(t, 41)
	golden := serveAccumBits(t, d, 4)

	journal, err := checkpoint.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := newAirServer(serverConfig{
		deployment: d,
		journal:    journal,
		meta:       checkpoint.Meta{Dataset: "synthetic", Seed: 41},
		workers:    2,
		sessionSrc: rng.New(5),
		logf:       t.Logf,
	})
	if got := srv.epochSeq.Load(); got != 1 {
		t.Fatalf("initial epoch journaled as seq %d, want 1", got)
	}
	// Kill: the server is simply abandoned. No Close, no flush.

	// Restart: a fresh journal handle over the same directory.
	j2, err := checkpoint.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := recoverEpoch(j2, "synthetic")
	if err != nil {
		t.Fatal(err)
	}
	if ep == nil {
		t.Fatal("journal holds an epoch but recovery reported cold start")
	}
	if ep.Seq != 1 || ep.Reason != "deploy" {
		t.Fatalf("recovered epoch %d (%q), want 1 (deploy)", ep.Seq, ep.Reason)
	}

	obs.SetEnabled(true)
	defer obs.SetEnabled(false)
	solvesBefore := obs.Default().Snapshot().Counters["mts.solve.calls"]
	restored, err := restoreDeployment(ep)
	if err != nil {
		t.Fatal(err)
	}
	if solvesAfter := obs.Default().Snapshot().Counters["mts.solve.calls"]; solvesAfter != solvesBefore {
		t.Fatalf("recovery re-solved schedules: mts.solve.calls %d → %d", solvesBefore, solvesAfter)
	}
	assertSameBits(t, serveAccumBits(t, restored, 4), golden)

	// A journal recorded for another dataset must refuse, not cold-start.
	if _, err := recoverEpoch(j2, "mnist"); err == nil {
		t.Fatal("dataset-mismatched journal recovered without error")
	}
}

// TestRecoverSkipsCorruptEpochs pins the fallback: when the newest journal
// entries are truncated or bit-flipped, recovery silently steps back to the
// newest valid epoch and the corrupted state is never served.
func TestRecoverSkipsCorruptEpochs(t *testing.T) {
	dir := t.TempDir()
	d := testDeployment(t, 43)
	journal, err := checkpoint.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := newAirServer(serverConfig{
		deployment: d,
		journal:    journal,
		meta:       checkpoint.Meta{Dataset: "synthetic", Seed: 43},
		sessionSrc: rng.New(7),
		logf:       t.Logf,
	})
	srv.heal() // republish → journals epoch 2 with reason "heal"
	if got := srv.epochSeq.Load(); got != 2 {
		t.Fatalf("heal journaled as seq %d, want 2", got)
	}

	// Corrupt the newest entry: flip one byte in the middle of the payload.
	newest := filepath.Join(dir, "epoch-00000002.ckpt")
	blob, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)/2] ^= 0x40
	if err := os.WriteFile(newest, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := checkpoint.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := recoverEpoch(j2, "synthetic")
	if err != nil {
		t.Fatal(err)
	}
	if ep == nil || ep.Seq != 1 {
		t.Fatalf("recovery did not fall back to epoch 1 (got %+v)", ep)
	}
	restored, err := restoreDeployment(ep)
	if err != nil {
		t.Fatal(err)
	}
	// Epoch 1 is the original deployment, bit for bit.
	assertSameBits(t, serveAccumBits(t, restored, 3), serveAccumBits(t, d, 3))

	// With every entry corrupted, recovery reports cold start, not garbage.
	first := filepath.Join(dir, "epoch-00000001.ckpt")
	if err := os.Truncate(first, 10); err != nil {
		t.Fatal(err)
	}
	ep, err = recoverEpoch(j2, "synthetic")
	if err != nil {
		t.Fatal(err)
	}
	if ep != nil {
		t.Fatalf("recovered epoch %d from an all-corrupt journal", ep.Seq)
	}
}

// TestHealCanaryRejectsSabotagedCandidate drives the acceptance fault: a
// deliberately regressive heal (faults.SabotageHeal) must be rejected by the
// canary gate before publication — no epoch swap, no journal entry, the
// injector still serving the pre-heal deployment — and the rejection must be
// observable. Disarming the sabotage lets the same server heal normally.
func TestHealCanaryRejectsSabotagedCandidate(t *testing.T) {
	dir := t.TempDir()
	d := testDeployment(t, 17)
	inj, err := faults.New(d, faults.Rates{StuckAtomFrac: 0.05}, rng.New(21))
	if err != nil {
		t.Fatal(err)
	}
	inj.SabotageHeal(0.9)
	journal, err := checkpoint.OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := newAirServer(serverConfig{
		deployment:   inj.Deployment(),
		injector:     inj,
		reference:    d, // golden outputs come from the pre-damage deployment
		canaryProbes: probeInputs(d.InputLen(), 24, 91),
		canaryFrac:   0.6,
		canarySeed:   3,
		journal:      journal,
		meta:         checkpoint.Meta{Dataset: "synthetic", Seed: 17},
		sessionSrc:   rng.New(9),
		logf:         t.Logf,
	})

	before := srv.cur.Load()
	srv.heal()
	if got := srv.canaryRejects.Load(); got != 1 {
		t.Fatalf("canaryRejects = %d, want 1", got)
	}
	if srv.swaps.Load() != 0 {
		t.Fatal("sabotaged heal was published")
	}
	if srv.cur.Load() != before {
		t.Fatal("sabotaged heal swapped the serving epoch")
	}
	if inj.Healed() {
		t.Fatal("sabotaged heal was committed to the injector")
	}
	if ep, err := recoverEpoch(journal, "synthetic"); err != nil || ep.Seq != 1 {
		t.Fatalf("journal moved past the deploy epoch: %+v, %v", ep, err)
	}

	// Disarmed, the clean re-solve passes the same gate and publishes.
	inj.SabotageHeal(0)
	srv.heal()
	if srv.swaps.Load() != 1 || !inj.Healed() {
		t.Fatalf("clean heal did not publish (swaps=%d healed=%v)", srv.swaps.Load(), inj.Healed())
	}
	if ep, err := recoverEpoch(journal, "synthetic"); err != nil || ep.Seq != 2 || ep.Reason != "heal" {
		t.Fatalf("clean heal not journaled as epoch 2: %+v, %v", ep, err)
	}
	if srv.canaryRejects.Load() != 1 {
		t.Fatal("clean heal bumped canaryRejects")
	}
}

// TestRollbackRestoresPreviousEpoch exercises the post-publication
// supervisor: a heal that passes the gate but regresses the observed margins
// is rolled back to the previous journaled epoch with fresh sessions, and
// the rollback is journaled and counted. A heal whose margins hold is left
// alone.
func TestRollbackRestoresPreviousEpoch(t *testing.T) {
	high := []float64{1, 0.2, 0.1} // margin 0.8
	low := []float64{1, 0.95, 0.9} // margin 0.05
	fill := func(m *mobility.Monitor, mags []float64, n int) {
		for i := 0; i < n; i++ {
			m.Observe(mags)
		}
	}

	build := func(seed uint64, dir string) (*airServer, *faults.Injector, *ota.Deployment) {
		d := testDeployment(t, seed)
		inj, err := faults.New(d, faults.Rates{StuckAtomFrac: 0.05}, rng.New(seed^0xf))
		if err != nil {
			t.Fatal(err)
		}
		journal, err := checkpoint.OpenJournal(dir)
		if err != nil {
			t.Fatal(err)
		}
		srv := newAirServer(serverConfig{
			deployment:   inj.Deployment(),
			injector:     inj,
			monitor:      mobility.NewMonitor(1e-9, 4), // threshold ~0: never trips on its own
			rollbackFrac: 0.9,
			journal:      journal,
			meta:         checkpoint.Meta{Dataset: "synthetic", Seed: seed},
			sessionSrc:   rng.New(seed ^ 0xabc),
			logf:         t.Logf,
		})
		return srv, inj, inj.Deployment()
	}

	t.Run("regression rolls back", func(t *testing.T) {
		srv, _, faulted := build(51, t.TempDir())
		fill(srv.cfg.monitor, high, 4) // healthy pre-heal margins
		srv.heal()                     // publishes, arms the watch, resets the window
		srv.checkRollback()            // window empty: watch must stay armed
		if srv.rollbacks.Load() != 0 {
			t.Fatal("rollback fired before the post-heal window filled")
		}
		fill(srv.cfg.monitor, low, 4) // post-heal margins collapse
		srv.checkRollback()
		if got := srv.rollbacks.Load(); got != 1 {
			t.Fatalf("rollbacks = %d, want 1", got)
		}
		if srv.cur.Load().d != faulted {
			t.Fatal("rollback did not restore the previous epoch's deployment")
		}
		if ep, err := recoverEpoch(srv.cfg.journal, "synthetic"); err != nil || ep.Reason != "rollback" {
			t.Fatalf("rollback not journaled: %+v, %v", ep, err)
		}
		// The watch is spent: further ticks must not roll back again.
		fill(srv.cfg.monitor, low, 4)
		srv.checkRollback()
		if srv.rollbacks.Load() != 1 {
			t.Fatal("rollback fired twice for one heal")
		}
	})

	t.Run("holding heal is kept", func(t *testing.T) {
		srv, inj, _ := build(53, t.TempDir())
		fill(srv.cfg.monitor, high, 4)
		srv.heal()
		healed := srv.cur.Load().d
		fill(srv.cfg.monitor, high, 4) // margins hold after the heal
		srv.checkRollback()
		if srv.rollbacks.Load() != 0 {
			t.Fatal("healthy heal was rolled back")
		}
		if srv.cur.Load().d != healed {
			t.Fatal("epoch changed without a rollback")
		}
		if !inj.Healed() {
			t.Fatal("heal did not commit")
		}
	})
}

// orderedFake records shutdown-sequence events for the clean-exit test.
type orderedFake struct {
	events *[]string
	name   string
}

func (f orderedFake) Close() error { *f.events = append(*f.events, f.name); return nil }
func (f orderedFake) Shutdown(ctx context.Context) error {
	if _, ok := ctx.Deadline(); !ok {
		return context.DeadlineExceeded
	}
	*f.events = append(*f.events, f.name)
	return nil
}

// TestCloseStackOrdering pins the clean-exit sequence: the epoch journal
// flushes strictly before the metrics sidecar shuts down (durability first,
// observability last), and absent components are skipped without panics.
func TestCloseStackOrdering(t *testing.T) {
	var events []string
	closeStack(orderedFake{&events, "journal"}, orderedFake{&events, "sidecar"}, t.Logf)
	if len(events) != 2 || events[0] != "journal" || events[1] != "sidecar" {
		t.Fatalf("shutdown order = %v, want [journal sidecar]", events)
	}
	closeStack(nil, nil, nil) // no components, no panic
}

// TestServeShutdownFlushOrdering is the end-to-end clean-exit regression:
// with a request parked in flight, the read loop dies, the worker's reply
// lands BEFORE the journal flush, and the journal flush lands before the
// sidecar teardown — drain → flush → sidecar, never interleaved.
func TestServeShutdownFlushOrdering(t *testing.T) {
	d := testDeployment(t, 61)
	journal, err := checkpoint.OpenJournal(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	parked := make(chan struct{}, 8)
	srv := newAirServer(serverConfig{
		deployment: d,
		journal:    journal,
		meta:       checkpoint.Meta{Dataset: "synthetic", Seed: 61},
		workers:    1,
		sessionSrc: rng.New(3),
		logf:       t.Logf,
		preInfer: func() {
			parked <- struct{}{}
			<-gate
		},
	})

	conn, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	done := make(chan error, 1)
	go func() { done <- srv.serve(conn) }()
	client := dialServer(t, conn.LocalAddr().(*net.UDPAddr))

	req := &airproto.Frame{ID: 7, Data: testSymbols(d.InputLen(), 7)}
	out, _ := req.Marshal()
	if _, err := client.Write(out); err != nil {
		t.Fatal(err)
	}
	<-parked // the worker holds the request in flight

	// Kill the read loop without closing the socket, then release the worker.
	if err := conn.SetReadDeadline(time.Now()); err != nil {
		t.Fatal(err)
	}
	close(gate)

	var events []string
	client.SetReadDeadline(time.Now().Add(10 * time.Second))
	buf := make([]byte, 65535)
	n, err := client.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if resp, err := airproto.Unmarshal(buf[:n]); err != nil || resp.ID != 7 || resp.IsNack() {
		t.Fatalf("in-flight request lost during shutdown: %v %+v", err, resp)
	}
	events = append(events, "reply")

	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("serve never drained")
	}
	events = append(events, "drained")
	closeStack(journal, orderedFake{&events, "sidecar"}, t.Logf)

	want := []string{"reply", "drained", "sidecar"}
	if len(events) != len(want) {
		t.Fatalf("shutdown events = %v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("shutdown events = %v, want %v", events, want)
		}
	}
	// The journal survived the flush intact: the deploy epoch recovers.
	if ep, err := recoverEpoch(journal, "synthetic"); err != nil || ep == nil || ep.Seq != 1 {
		t.Fatalf("journal unrecoverable after clean exit: %+v, %v", ep, err)
	}
}
