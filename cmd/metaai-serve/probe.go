package main

import (
	"fmt"
	"log"
	"net"
	"sort"
	"time"

	metaai "repro"

	"repro/internal/airproto"
	"repro/internal/dataset"
	"repro/internal/nn"
	"repro/internal/rng"
)

// probeAttempts is how many times the probe sends its request before giving
// up. UDP drops and degraded-server NACKs are both expected in the wild;
// waits between attempts grow exponentially with jitter so a fleet of
// probes does not synchronize its retries against a recovering server.
const probeAttempts = 3

// probeBackoffBase is the first retry delay; attempt k waits
// base·2^(k−1)·jitter with jitter uniform in [0.5, 1.5).
const probeBackoffBase = 100 * time.Millisecond

func runProbe(addr, ds string, seed uint64, timeout time.Duration, stats int) error {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	cfg := metaai.DefaultConfig(ds)
	cfg.Seed = seed
	data := dataset.MustLoad(ds, cfg.Scale, cfg.Seed)
	sample := data.Test[0]
	// Encode with the same pipeline encoder the server deployed.
	enc := nn.Encoder{Scheme: cfg.Scheme}
	symbols := enc.Encode(sample.X)

	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	conn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return err
	}
	defer conn.Close()
	req := &airproto.Frame{ID: 1, Label: int32(sample.Label), Data: symbols}
	resp, err := exchange(conn, req, timeout, probeBackoffBase, probeAttempts, rng.New(seed^0x9e0be))
	if err != nil {
		return fmt.Errorf("probe %s: %w", addr, err)
	}
	best, arg := -1.0, 0
	for r, v := range resp.Data {
		m := real(v)*real(v) + imag(v)*imag(v)
		if m > best {
			best, arg = m, r
		}
	}
	fmt.Printf("probe: sample label %d classified as %d over the air\n", sample.Label, arg)
	if stats > 0 {
		return probeStats(conn, symbols, stats, timeout, rng.New(seed^0x57a75))
	}
	return nil
}

// probeStats hammers the server with n sequential timed requests and reports
// client-side round-trip latency percentiles — a quick serving-latency read
// without attaching the observability sidecar.
func probeStats(conn *net.UDPConn, symbols []complex128, n int, timeout time.Duration, src *rng.Source) error {
	lat := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		req := &airproto.Frame{ID: uint32(i + 2), Data: symbols}
		start := time.Now()
		if _, err := exchange(conn, req, timeout, probeBackoffBase, probeAttempts, src); err != nil {
			return fmt.Errorf("stats request %d/%d: %w", i+1, n, err)
		}
		lat = append(lat, time.Since(start))
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(q float64) time.Duration {
		idx := int(q * float64(len(lat)-1))
		return lat[idx]
	}
	fmt.Printf("probe stats: %d requests  min %v  p50 %v  p90 %v  p99 %v  max %v\n",
		n, lat[0].Round(time.Microsecond), pct(0.50).Round(time.Microsecond),
		pct(0.90).Round(time.Microsecond), pct(0.99).Round(time.Microsecond),
		lat[len(lat)-1].Round(time.Microsecond))
	if line, err := serverStatsLine(conn, uint32(n+2), timeout, src); err != nil {
		// Older servers don't speak KindStats; latency numbers still stand.
		log.Printf("probe: server stats unavailable: %v", err)
	} else {
		fmt.Println(line)
	}
	return nil
}

// serverStatsLine asks the server for its serving counters over the wire
// (an airproto KindStats exchange) and formats them — heal, rollback, and
// epoch visibility without attaching the HTTP sidecar.
func serverStatsLine(conn *net.UDPConn, id uint32, timeout time.Duration, src *rng.Source) (string, error) {
	resp, err := exchange(conn, &airproto.Frame{Kind: airproto.KindStats, ID: id}, timeout, probeBackoffBase, probeAttempts, src)
	if err != nil {
		return "", err
	}
	if resp.Kind != airproto.KindStats || len(resp.Data) < airproto.StatsVectorLen {
		return "", fmt.Errorf("malformed stats reply (kind %d, %d values)", resp.Kind, len(resp.Data))
	}
	at := func(i int) int64 { return int64(real(resp.Data[i])) }
	return fmt.Sprintf("server stats: served %d  heals %d  swaps %d  rollbacks %d  canary-rejects %d  epoch %d",
		at(airproto.StatServed), at(airproto.StatHeals), at(airproto.StatSwaps),
		at(airproto.StatRollbacks), at(airproto.StatCanaryRejects), at(airproto.StatEpochSeq)), nil
}

// exchange sends req and waits for THE MATCHING response: a reply whose ID
// differs from the request's — a delayed answer to an earlier attempt, or a
// stray datagram — is discarded and the read continues within the same
// deadline, so it can never be mistaken for this attempt's answer. NACKs
// are interpreted per status code: StatusDegraded is retryable (the server
// is shedding load or healing — back off and try again); StatusWrongLen
// and StatusBadFrame mean the request itself is wrong and retrying cannot
// help. Each attempt after the first is preceded by a jittered exponential
// backoff delay.
//
// Before every send, any datagrams already buffered on the socket are
// drained. readMatching must accept zero-ID NACKs (an unparseable request
// cannot be named by its rejection), so a zero-ID NACK left over from an
// EARLIER request would otherwise be read as this request's answer and turn
// a perfectly good exchange into a spurious hard failure.
func exchange(conn *net.UDPConn, req *airproto.Frame, timeout, backoffBase time.Duration, attempts int, src *rng.Source) (*airproto.Frame, error) {
	out, err := req.Marshal()
	if err != nil {
		return nil, err
	}
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for attempt := 1; attempt <= attempts; attempt++ {
		drainStale(conn)
		if _, err := conn.Write(out); err != nil {
			return nil, err
		}
		if err := conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
			return nil, err
		}
		resp, err := readMatching(conn, req.ID)
		switch {
		case err != nil:
			ne, ok := err.(net.Error)
			if !ok || !ne.Timeout() {
				return nil, err
			}
			lastErr = fmt.Errorf("no response within %v", timeout)
		case resp.IsNack():
			switch resp.Code {
			case airproto.StatusDegraded:
				lastErr = fmt.Errorf("server degraded, asked to back off")
			case airproto.StatusWrongLen:
				return nil, fmt.Errorf("server rejected frame: deployed for U=%d symbols, sent %d", resp.Label, len(req.Data))
			default:
				return nil, fmt.Errorf("server rejected frame as malformed (status %d)", resp.Code)
			}
		default:
			return resp, nil
		}
		// The backoff sleeps only BETWEEN attempts: once the final attempt
		// has failed there is nothing left to wait for, and the caller gets
		// the verdict immediately.
		if attempt < attempts {
			delay := time.Duration(float64(backoffBase) * float64(int(1)<<(attempt-1)) * (0.5 + src.Float64()))
			log.Printf("probe: attempt %d/%d failed (%v), retrying in %v", attempt, attempts, lastErr, delay.Round(time.Millisecond))
			time.Sleep(delay)
		}
	}
	return nil, fmt.Errorf("gave up after %d attempts: %v", attempts, lastErr)
}

// drainStale discards every datagram already buffered on conn: delayed
// replies and zero-ID NACKs from previous exchanges that readMatching would
// otherwise accept as the next request's answer. The deadline must sit
// slightly in the future — a read against an already-expired deadline fails
// immediately WITHOUT consuming buffered data — so an empty buffer costs one
// millisecond, and each stale datagram is consumed without waiting.
func drainStale(conn *net.UDPConn) {
	if err := conn.SetReadDeadline(time.Now().Add(time.Millisecond)); err != nil {
		return
	}
	buf := make([]byte, 65535)
	for {
		if _, err := conn.Read(buf); err != nil {
			return
		}
	}
}

// readMatching reads frames until one carries the wanted request ID,
// discarding unparseable datagrams and mismatched IDs. A NACK with ID 0 is
// also accepted: the server could not parse the offending request, so the
// rejection cannot name it. The caller's read deadline bounds the loop.
func readMatching(conn *net.UDPConn, id uint32) (*airproto.Frame, error) {
	buf := make([]byte, 65535)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return nil, err
		}
		resp, err := airproto.Unmarshal(buf[:n])
		if err != nil {
			continue // garbage datagram: keep reading until the deadline
		}
		if resp.ID != id && !(resp.IsNack() && resp.ID == 0) {
			continue // delayed reply to an earlier attempt: not our answer
		}
		return resp, nil
	}
}
