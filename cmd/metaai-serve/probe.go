package main

import (
	"encoding/json"
	"fmt"
	"log"
	"net"
	"os"
	"sort"
	"time"

	metaai "repro"

	"repro/internal/airproto"
	"repro/internal/dataset"
	"repro/internal/netchaos"
	"repro/internal/nn"
	"repro/internal/obs/trace"
	"repro/internal/rng"
)

// probeAttempts is how many times the probe sends its request before giving
// up. UDP drops and degraded-server NACKs are both expected in the wild;
// waits between attempts grow exponentially with jitter so a fleet of
// probes does not synchronize its retries against a recovering server.
const probeAttempts = 3

// probeBackoffBase caps the first retry delay; attempt k waits a FULL
// jitter delay uniform in [0, base·2^(k−1)) — unlike the old equal-jitter
// [0.5, 1.5)·base·2^(k−1), a full-jitter spread leaves no common floor for
// a shed wave's retry storm to synchronize on. The draw comes from a
// source derived from the probe seed and the request ID, so a fixed-seed
// probe run replays the exact same delays.
const probeBackoffBase = 100 * time.Millisecond

// probeConn is the connected-UDP surface the probe speaks — a bare
// *net.UDPConn, or a netchaos.Stream when -chaos-rate wraps the client
// side of the link.
type probeConn = netchaos.StreamConn

// probeOptions carries the probe-mode flags; runProbe dispatches on them.
type probeOptions struct {
	ds      string
	seed    uint64
	timeout time.Duration
	// budget, when positive, bounds each exchange end to end across all
	// retry attempts and backoff sleeps (see exchange).
	budget time.Duration
	// deadline, when positive, is stamped onto every data request as its
	// wire deadline budget: the server (and any router hop) drops the work
	// with StatusExpired once the budget runs out instead of answering late.
	deadline time.Duration
	// chaosRate, when positive, wraps the probe's socket with the
	// netchaos.Mix fault load at this severity, seeded by chaosSeed.
	chaosRate float64
	chaosSeed uint64
	stats     int
	jsonOut   bool
	traceID   string
}

func runProbe(addr string, opt probeOptions) error {
	if opt.timeout <= 0 {
		opt.timeout = 5 * time.Second
	}
	raddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	udpConn, err := net.DialUDP("udp", nil, raddr)
	if err != nil {
		return err
	}
	var conn probeConn = udpConn
	if opt.chaosRate > 0 {
		conn = netchaos.WrapStream(udpConn, netchaos.Config{
			Seed:     opt.chaosSeed,
			Inbound:  netchaos.Mix(opt.chaosRate),
			Outbound: netchaos.Mix(opt.chaosRate),
		})
		log.Printf("probe: chaos armed on the client socket (mix severity %.2f, seed %d)", opt.chaosRate, opt.chaosSeed)
	}
	defer conn.Close()

	if opt.traceID != "" {
		// Trace fetch replaces classification: pull the retained span tree
		// for one request out of the server's ring, over the air.
		return fetchTrace(conn, opt.traceID, opt.timeout, opt.budget, rng.New(opt.seed^0x7ace))
	}

	cfg := metaai.DefaultConfig(opt.ds)
	cfg.Seed = opt.seed
	data := dataset.MustLoad(opt.ds, cfg.Scale, cfg.Seed)
	sample := data.Test[0]
	// Encode with the same pipeline encoder the server deployed.
	enc := nn.Encoder{Scheme: cfg.Scheme}
	symbols := enc.Encode(sample.X)

	req := &airproto.Frame{ID: 1, Label: int32(sample.Label), Data: symbols}
	req.SetDeadline(opt.deadline)
	resp, err := exchange(conn, req, opt.timeout, opt.budget, probeBackoffBase, probeAttempts, rng.New(opt.seed^0x9e0be))
	if err != nil {
		return fmt.Errorf("probe %s: %w", addr, err)
	}
	best, arg := -1.0, 0
	for r, v := range resp.Data {
		m := real(v)*real(v) + imag(v)*imag(v)
		if m > best {
			best, arg = m, r
		}
	}
	if !opt.jsonOut {
		fmt.Printf("probe: sample label %d classified as %d over the air\n", sample.Label, arg)
	}
	if opt.stats > 0 {
		return probeStats(conn, symbols, opt.stats, opt.timeout, opt.budget, opt.deadline, opt.jsonOut, rng.New(opt.seed^0x57a75))
	}
	if opt.jsonOut {
		return json.NewEncoder(os.Stdout).Encode(map[string]any{
			"label": sample.Label, "classified": arg,
		})
	}
	return nil
}

// fetchTrace asks the server for a retained trace by 64-bit hex ID (an
// airproto KindTrace exchange) and prints the Chrome trace-event JSON the
// server packed into the reply. A StatusNoTrace NACK means the ring never
// retained — or has since evicted — that ID.
func fetchTrace(conn probeConn, idHex string, timeout, budget time.Duration, src *rng.Source) error {
	id, err := trace.ParseID(idHex)
	if err != nil {
		return fmt.Errorf("bad trace id %q: %w", idHex, err)
	}
	resp, err := exchange(conn, airproto.TraceRequest(uint64(id)), timeout, budget, probeBackoffBase, probeAttempts, src)
	if err != nil {
		return fmt.Errorf("trace fetch %s: %w", idHex, err)
	}
	if resp.Kind != airproto.KindTrace {
		return fmt.Errorf("malformed trace reply (kind %d)", resp.Kind)
	}
	body := airproto.UnpackBytes(resp.Data, int(resp.Label))
	if resp.Code == airproto.StatusNoTrace {
		// The full export did not fit one datagram: the server truncated at
		// MaxTraceBytes. Say so on stderr; the (cut) JSON still goes out.
		log.Printf("probe: trace %s truncated to %d bytes by the wire format", idHex, len(body))
	}
	fmt.Println(string(body))
	return nil
}

// probeStats hammers the server with n sequential timed requests and reports
// client-side round-trip latency percentiles — a quick serving-latency read
// without attaching the observability sidecar. With jsonOut the same
// numbers (plus the server's own counters, when it speaks KindStats) go out
// as one machine-readable JSON object instead of prose.
func probeStats(conn probeConn, symbols []complex128, n int, timeout, budget, deadline time.Duration, jsonOut bool, src *rng.Source) error {
	lat := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		req := &airproto.Frame{ID: uint32(i + 2), Data: symbols}
		req.SetDeadline(deadline)
		start := time.Now()
		if _, err := exchange(conn, req, timeout, budget, probeBackoffBase, probeAttempts, src); err != nil {
			return fmt.Errorf("stats request %d/%d: %w", i+1, n, err)
		}
		lat = append(lat, time.Since(start))
	}
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	pct := func(q float64) time.Duration {
		idx := int(q * float64(len(lat)-1))
		return lat[idx]
	}
	server, fleetStats, serverErr := serverStats(conn, uint32(n+2), timeout, budget, src)
	if jsonOut {
		out := map[string]any{
			"requests": n,
			"latency_seconds": map[string]float64{
				"min": lat[0].Seconds(),
				"p50": pct(0.50).Seconds(),
				"p90": pct(0.90).Seconds(),
				"p99": pct(0.99).Seconds(),
				"max": lat[len(lat)-1].Seconds(),
			},
		}
		if serverErr == nil {
			out["server"] = server
			if fleetStats != nil {
				out["fleet"] = fleetStats
			}
		} else {
			out["server_error"] = serverErr.Error()
		}
		return json.NewEncoder(os.Stdout).Encode(out)
	}
	fmt.Printf("probe stats: %d requests  min %v  p50 %v  p90 %v  p99 %v  max %v\n",
		n, lat[0].Round(time.Microsecond), pct(0.50).Round(time.Microsecond),
		pct(0.90).Round(time.Microsecond), pct(0.99).Round(time.Microsecond),
		lat[len(lat)-1].Round(time.Microsecond))
	if serverErr != nil {
		// Older servers don't speak KindStats; latency numbers still stand.
		log.Printf("probe: server stats unavailable: %v", serverErr)
	} else {
		fmt.Printf("server stats: served %d  heals %d  swaps %d  rollbacks %d  canary-rejects %d  epoch %d  shed %d  expired %d\n",
			server["served"], server["heals"], server["swaps"],
			server["rollbacks"], server["canary_rejects"], server["epoch_seq"],
			server["shed"], server["expired"])
		if fleetStats != nil {
			fmt.Printf("fleet stats: live %v  forwards %v  failovers %v  hedged-wins %v  shed %v  expired %v  p99 %vµs  burn %v/%v  health %v\n",
				fleetStats["live"], fleetStats["forwards"], fleetStats["failovers"],
				fleetStats["hedged_wins"], fleetStats["shed"], fleetStats["expired"],
				fleetStats["p99_micros"], fleetStats["burn_fast"], fleetStats["burn_slow"],
				fleetStats["health"])
		}
	}
	return nil
}

// serverStats asks the server for its serving counters over the wire (an
// airproto KindStats exchange) — heal, rollback, and epoch visibility
// without attaching the HTTP sidecar. The reply's Code carries the stats
// vector version: a StatsVersionFleet reply (the fleet router answering for
// the whole fleet) additionally yields the fleet map — router counters,
// merged p99, SLO burn rates, and one health score per live replica. Older
// servers and plain replicas yield fleet == nil; versions only ever append
// slots, so the legacy indexes decode identically from every version.
func serverStats(conn probeConn, id uint32, timeout, budget time.Duration, src *rng.Source) (map[string]int64, map[string]any, error) {
	resp, err := exchange(conn, &airproto.Frame{Kind: airproto.KindStats, ID: id}, timeout, budget, probeBackoffBase, probeAttempts, src)
	if err != nil {
		return nil, nil, err
	}
	if resp.Kind != airproto.KindStats || len(resp.Data) < airproto.StatsVectorLen {
		return nil, nil, fmt.Errorf("malformed stats reply (kind %d, %d values)", resp.Kind, len(resp.Data))
	}
	at := func(i int) int64 { return int64(real(resp.Data[i])) }
	legacy := map[string]int64{
		"served":         at(airproto.StatServed),
		"heals":          at(airproto.StatHeals),
		"swaps":          at(airproto.StatSwaps),
		"rollbacks":      at(airproto.StatRollbacks),
		"canary_rejects": at(airproto.StatCanaryRejects),
		"epoch_seq":      at(airproto.StatEpochSeq),
		"shed":           at(airproto.StatShed),
		"expired":        at(airproto.StatExpired),
	}
	if resp.Code < airproto.StatsVersionFleet || len(resp.Data) < airproto.FleetStatsVectorLen {
		return legacy, nil, nil
	}
	health := make([]float64, 0, len(resp.Data)-airproto.FleetStatsVectorLen)
	for _, v := range resp.Data[airproto.FleetStatsVectorLen:] {
		health = append(health, real(v))
	}
	fleetStats := map[string]any{
		"live":        at(airproto.FleetStatLive),
		"replicas":    at(airproto.FleetStatReplicas),
		"forwards":    at(airproto.FleetStatForwards),
		"failovers":   at(airproto.FleetStatFailovers),
		"hedged_wins": at(airproto.FleetStatHedgedWins),
		"shed":        at(airproto.FleetStatShed),
		"expired":     at(airproto.FleetStatExpired),
		"p99_micros":  real(resp.Data[airproto.FleetStatP99Micros]),
		"burn_fast":   real(resp.Data[airproto.FleetStatBurnFast]),
		"burn_slow":   real(resp.Data[airproto.FleetStatBurnSlow]),
		"health":      health,
	}
	return legacy, fleetStats, nil
}

// exchange sends req and waits for THE MATCHING response: a reply whose ID
// differs from the request's — a delayed answer to an earlier attempt, or a
// stray datagram — is discarded and the read continues within the same
// deadline, so it can never be mistaken for this attempt's answer. NACKs
// are interpreted per status code: StatusDegraded is retryable (the server
// is shedding load or healing — back off and try again), StatusRetryAfter
// is retryable but floors the next backoff at the server's hint (the
// brownout told us exactly how long it wants us gone), and StatusExpired is
// retryable with a fresh deadline budget (the old one died in a queue, not
// the request itself); StatusWrongLen, StatusNoTrace, and StatusBadFrame
// mean the request itself cannot succeed and retrying won't help. Each
// attempt after the first is preceded by a FULL-jitter exponential backoff
// delay — uniform in [0, base·2^(k−1)), drawn from a source derived from
// the caller's seed and the request ID so replays are exact — and counted
// in probe.retries.
//
// budget, when positive, is an overall deadline across ALL attempts and the
// backoff sleeps between them: per-attempt timeouts bound one wait, the
// budget bounds the whole exchange, so a caller with a latency contract is
// never held for attempts × timeout plus the sleeps. A per-attempt read is
// clipped to the remaining budget, and an exchange that runs out — either
// before an attempt can start or because the next backoff would sleep
// through everything that is left — fails with a budget error, counted in
// probe.budget_exhausted separately from the per-attempt timeouts it
// subsumes. Zero disables the budget and preserves the retry-until-spent
// behavior.
//
// Before every send, any datagrams already buffered on the socket are
// drained. readMatching must accept zero-ID NACKs (an unparseable request
// cannot be named by its rejection), so a zero-ID NACK left over from an
// EARLIER request would otherwise be read as this request's answer and turn
// a perfectly good exchange into a spurious hard failure.
func exchange(conn probeConn, req *airproto.Frame, timeout, budget, backoffBase time.Duration, attempts int, src *rng.Source) (*airproto.Frame, error) {
	out, err := req.Marshal()
	if err != nil {
		return nil, err
	}
	if attempts < 1 {
		attempts = 1
	}
	// The jitter stream mixes the request ID into the caller's seed: many
	// probes sharing a seed base still spread their retries, and a replay
	// of one probe run reproduces every delay exactly.
	jsrc := rng.New(src.Uint64() ^ uint64(req.ID)*0x9e3779b97f4a7c15)
	var deadline time.Time
	if budget > 0 {
		deadline = time.Now().Add(budget)
	}
	var lastErr error
	var retryFloor time.Duration // latest StatusRetryAfter hint, floors the next backoff
	for attempt := 1; attempt <= attempts; attempt++ {
		wait := timeout
		if budget > 0 {
			remaining := time.Until(deadline)
			if remaining <= 0 {
				probeBudgetExhausted.Inc()
				return nil, fmt.Errorf("probe budget %v exhausted after %d attempts: %v", budget, attempt-1, lastErr)
			}
			if remaining < wait {
				wait = remaining
			}
		}
		drainStale(conn)
		if _, err := conn.Write(out); err != nil {
			return nil, err
		}
		if err := conn.SetReadDeadline(time.Now().Add(wait)); err != nil {
			return nil, err
		}
		resp, err := readMatching(conn, req.ID)
		switch {
		case err != nil:
			ne, ok := err.(net.Error)
			if !ok || !ne.Timeout() {
				return nil, err
			}
			lastErr = fmt.Errorf("no response within %v", wait)
		case resp.IsNack():
			switch resp.Code {
			case airproto.StatusDegraded:
				lastErr = fmt.Errorf("server degraded, asked to back off")
			case airproto.StatusRetryAfter:
				retryFloor = resp.RetryAfterHint()
				lastErr = fmt.Errorf("server browning out, asked to retry after %v", retryFloor)
			case airproto.StatusExpired:
				lastErr = fmt.Errorf("deadline budget expired in the server's queue (%d ms late)", resp.Label)
			case airproto.StatusWrongLen:
				return nil, fmt.Errorf("server rejected frame: deployed for U=%d symbols, sent %d", resp.Label, len(req.Data))
			case airproto.StatusNoTrace:
				return nil, fmt.Errorf("server retains no such trace (sampled out, evicted, or never recorded)")
			default:
				return nil, fmt.Errorf("server rejected frame as malformed (status %d)", resp.Code)
			}
		default:
			return resp, nil
		}
		// The backoff sleeps only BETWEEN attempts: once the final attempt
		// has failed there is nothing left to wait for, and the caller gets
		// the verdict immediately.
		if attempt < attempts {
			// Full jitter: uniform in [0, cap) with cap doubling per attempt.
			// No deterministic floor means no instant for a retry storm to
			// re-synchronize on; a brownout hint reinstates a floor on
			// purpose — the server named its price.
			delay := time.Duration(jsrc.Float64() * float64(backoffBase) * float64(int(1)<<(attempt-1)))
			if delay < retryFloor {
				delay = retryFloor
			}
			retryFloor = 0
			if budget > 0 && time.Now().Add(delay).After(deadline) {
				// The backoff would sleep through the rest of the budget, so
				// the next attempt could never be answered: fail now and
				// return the remaining time to the caller.
				probeBudgetExhausted.Inc()
				return nil, fmt.Errorf("probe budget %v exhausted after %d attempts: %v", budget, attempt, lastErr)
			}
			probeRetries.Inc()
			log.Printf("probe: attempt %d/%d failed (%v), retrying in %v", attempt, attempts, lastErr, delay.Round(time.Millisecond))
			time.Sleep(delay)
		}
	}
	return nil, fmt.Errorf("gave up after %d attempts: %v", attempts, lastErr)
}

// drainStale discards every datagram already buffered on conn: delayed
// replies and zero-ID NACKs from previous exchanges that readMatching would
// otherwise accept as the next request's answer. The deadline must sit
// slightly in the future — a read against an already-expired deadline fails
// immediately WITHOUT consuming buffered data — so an empty buffer costs one
// millisecond, and each stale datagram is consumed without waiting. Drained
// datagrams that parse as NACKs count in probe.stale_nacks: a rising count
// reveals replies arriving after their exchange gave up on them.
func drainStale(conn probeConn) {
	if err := conn.SetReadDeadline(time.Now().Add(time.Millisecond)); err != nil {
		return
	}
	buf := make([]byte, 65535)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return
		}
		if f, err := airproto.Unmarshal(buf[:n]); err == nil && f.IsNack() {
			probeStaleNacks.Inc()
		}
	}
}

// readMatching reads frames until one carries the wanted request ID,
// discarding unparseable datagrams and mismatched IDs. A NACK with ID 0 is
// also accepted: the server could not parse the offending request, so the
// rejection cannot name it. The caller's read deadline bounds the loop.
func readMatching(conn probeConn, id uint32) (*airproto.Frame, error) {
	buf := make([]byte, 65535)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			return nil, err
		}
		resp, err := airproto.Unmarshal(buf[:n])
		if err != nil {
			continue // garbage datagram: keep reading until the deadline
		}
		if resp.ID != id && !(resp.IsNack() && resp.ID == 0) {
			continue // delayed reply to an earlier attempt: not our answer
		}
		return resp, nil
	}
}
